#include "net/connection.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <exception>

#include "fault/fault_injector.hpp"
#include "obs/telemetry.hpp"
#include "util/logging.hpp"

namespace rtmobile::net {

namespace {
/// One socket-read granule. Edge-triggered epoll requires draining to
/// EAGAIN, so the size only trades syscalls against stack usage.
constexpr std::size_t kReadChunk = 64 * 1024;

/// Steady-clock microseconds: connection deadlines must not jump when
/// the wall clock is adjusted.
std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Connection::Connection(int fd, serve::Recognizer& recognizer,
                       std::size_t max_write_buffer,
                       obs::Telemetry* telemetry,
                       fault::FaultInjector* fault)
    : fd_(fd),
      recognizer_(recognizer),
      max_write_buffer_(max_write_buffer),
      telemetry_(telemetry),
      fault_(fault),
      last_activity_us_(steady_now_us()),
      last_write_progress_us_(last_activity_us_) {}

Connection::~Connection() {
  // A connection dying with a live stream abandons it. close_stream may
  // itself backpressure; retry briefly, then leak the stream rather than
  // block the event loop (the recognizer reclaims it at shutdown).
  if (has_stream_) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      bool closed = false;
      try {
        closed = recognizer_.close_stream(handle_);
      } catch (const std::exception&) {
        closed = true;  // already dead server-side; nothing to release
      }
      if (closed) break;
    }
    has_stream_ = false;
  }
  if (fd_ >= 0) ::close(fd_);
}

void Connection::on_readable() {
  if (dead_ || want_close_) return;
  if (fault_ != nullptr &&
      fault_->should_fire(fault::Site::kConnRead,
                          static_cast<std::uint64_t>(fd_))) {
    dead_ = true;  // injected peer reset on the read path
    return;
  }
  if (paused()) {
    // Ingress backpressure: leave the bytes in the kernel buffer so TCP
    // pushes back on the client; pump_pending() resumes us.
    read_ready_while_paused_ = true;
    return;
  }
  std::array<std::uint8_t, kReadChunk> chunk;
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n > 0) {
      last_activity_us_ = steady_now_us();
      if (telemetry_ != nullptr) {
        telemetry_->net().bytes_in->add(static_cast<std::uint64_t>(n));
      }
      decoder_.feed({chunk.data(), static_cast<std::size_t>(n)});
      process_frames();
      // A frame may have paused us (backpressure) or killed the
      // connection mid-read; stop pulling more bytes either way.
      if (paused() || dead_ || want_close_) {
        read_ready_while_paused_ = paused();
        return;
      }
      continue;
    }
    if (n == 0) {  // peer closed its end
      dead_ = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
    if (errno == EINTR) continue;
    dead_ = true;  // ECONNRESET and friends
    return;
  }
}

void Connection::process_frames() {
  Frame frame;
  while (!paused() && !dead_ && !want_close_ && decoder_.next(frame)) {
    dispatch(frame);
  }
  if (decoder_.failed() && !want_close_ && !dead_) {
    // The decoder records *why* framing broke; a declared length past
    // the cap gets its own typed error so clients can tell a resource
    // refusal from a corrupt stream.
    if (decoder_.failure() == WireError::kFrameTooLarge) {
      fail(WireError::kFrameTooLarge,
           "declared frame length exceeds the server's frame cap");
    } else {
      fail(WireError::kProtocol, "unrecoverable framing error (bad length)");
    }
  }
}

void Connection::dispatch(const Frame& frame) {
  try {
    switch (frame.type) {
      case FrameType::kOpen:
        handle_open(frame);
        return;
      case FrameType::kAudio:
        handle_audio(frame);
        return;
      case FrameType::kFinish:
        handle_finish();
        return;
      case FrameType::kClose:
        handle_close();
        return;
      default:
        fail(WireError::kProtocol, "unexpected frame type from client");
        return;
    }
  } catch (const std::exception& e) {
    fail(WireError::kServerError, e.what());
  }
}

void Connection::handle_open(const Frame& frame) {
  if (has_stream_ || saw_final_ || finish_sent_) {
    fail(WireError::kProtocol, "duplicate open on this connection");
    return;
  }
  OpenRequest request;
  if (!decode_open(frame.payload, request)) {
    fail(WireError::kProtocol, "malformed open payload");
    return;
  }
  const serve::OpenResult result =
      recognizer_.try_open_stream(request.to_stream_config());
  switch (result.status) {
    case serve::OpenStatus::kOk:
      break;
    case serve::OpenStatus::kRejectedOverBudget:
      // Open-time admission control: the deployment is already lagging
      // past this stream's deadline budget — typed refusal, not service.
      fail(WireError::kRejectedOverBudget,
           "projected lag exceeds the requested deadline budget");
      return;
    case serve::OpenStatus::kBackpressure:
      fail(WireError::kBackpressureOverflow,
           "admission path congested; retry the connection");
      return;
  }
  handle_ = result.handle;
  has_stream_ = true;
  std::vector<std::uint8_t> reply;
  append_opened(reply, handle_.id);
  if (queue_bytes_ok(reply.size())) {
    note_queueing();
    write_buf_.insert(write_buf_.end(), reply.begin(), reply.end());
  }
}

void Connection::handle_audio(const Frame& frame) {
  if (!has_stream_) {
    fail(WireError::kProtocol, "audio before open");
    return;
  }
  if (finish_sent_) {
    fail(WireError::kProtocol, "audio after finish");
    return;
  }
  audio_scratch_.clear();
  if (!decode_audio(frame.payload, audio_scratch_)) {
    fail(WireError::kProtocol, "audio payload not a whole sample count");
    return;
  }
  if (audio_scratch_.empty()) return;
  if (!recognizer_.submit_audio(handle_, audio_scratch_)) {
    // Ingress backpressure: park the chunk and pause reads (TCP now
    // backpressures the client); pump_pending() retries.
    pending_audio_ = audio_scratch_;
    note_ingress_pause();
  }
}

void Connection::handle_finish() {
  if (!has_stream_ || finish_sent_) {
    fail(WireError::kProtocol, finish_sent_ ? "duplicate finish"
                                            : "finish before open");
    return;
  }
  finish_sent_ = true;
  if (!recognizer_.finish_stream(handle_)) {
    pending_finish_ = true;
    note_ingress_pause();
  }
}

void Connection::handle_close() {
  release_stream();
  want_close_ = true;
}

void Connection::pump_pending() {
  if (dead_) return;
  bool progressed = false;
  try {
    if (!pending_audio_.empty() && has_stream_) {
      if (recognizer_.submit_audio(handle_, pending_audio_)) {
        pending_audio_.clear();
        progressed = true;
      }
    }
    if (pending_audio_.empty() && pending_finish_ && has_stream_) {
      if (recognizer_.finish_stream(handle_)) {
        pending_finish_ = false;
        progressed = true;
      }
    }
    if (pending_close_ && has_stream_) {
      if (recognizer_.close_stream(handle_)) {
        pending_close_ = false;
        has_stream_ = false;
        progressed = true;
      }
    }
  } catch (const std::exception& e) {
    pending_audio_.clear();
    pending_finish_ = false;
    pending_close_ = false;
    has_stream_ = false;
    fail(WireError::kServerError, e.what());
    return;
  }
  if (progressed) {
    // Frames buffered behind the backpressure point come first; they may
    // immediately re-park us, in which case read_ready_while_paused_
    // stays set and the next retry resumes again — clearing it before
    // this drain completes would strand buffered bytes forever.
    process_frames();
    if (!paused() && !dead_ && !want_close_ && read_ready_while_paused_) {
      read_ready_while_paused_ = false;
      on_readable();
    }
  }
}

void Connection::deliver_event(const speech::StreamEvent& event) {
  if (dead_) return;
  std::vector<std::uint8_t> encoded;
  append_event(encoded, event);
  if (!queue_bytes_ok(encoded.size())) return;
  note_queueing();
  write_buf_.insert(write_buf_.end(), encoded.begin(), encoded.end());
  if (event.is_final) {
    saw_final_ = true;
    // The stream is complete: release recognizer resources now instead
    // of holding them until the client gets around to kClose.
    release_stream();
  }
}

void Connection::release_stream() {
  if (!has_stream_) return;
  pending_audio_.clear();
  pending_finish_ = false;
  try {
    if (recognizer_.close_stream(handle_)) {
      has_stream_ = false;
    } else {
      pending_close_ = true;  // retried by pump_pending
      note_ingress_pause();
    }
  } catch (const std::exception&) {
    has_stream_ = false;  // stream already dead server-side
  }
}

bool Connection::queue_bytes_ok(std::size_t incoming) {
  if (write_buf_.size() - write_pos_ + incoming <= max_write_buffer_) {
    return true;
  }
  // Slow consumer: the client is not reading fast enough for the events
  // its stream produces. Dropping beats unbounded buffering; the cap is
  // the bounded-memory contract that lets compute threads fire-and-forget.
  RT_LOG(Info, "net") << "stream=" << (has_stream_ ? handle_.id : 0)
                      << " dropping slow consumer (write buffer over "
                      << max_write_buffer_ << " bytes)";
  if (telemetry_ != nullptr) telemetry_->net().slow_consumer_drops->add(1);
  release_stream();
  dead_ = true;
  return false;
}

void Connection::note_ingress_pause() {
  if (telemetry_ != nullptr) telemetry_->net().ingress_pauses->add(1);
}

void Connection::try_flush() {
  if (dead_ || write_pos_ >= write_buf_.size()) return;
  if (fault_ != nullptr &&
      fault_->should_fire(fault::Site::kConnWrite,
                          static_cast<std::uint64_t>(fd_))) {
    dead_ = true;  // injected peer reset on the write path
    return;
  }
  RT_SPAN(telemetry_ != nullptr ? &telemetry_->trace() : nullptr,
          kSocketWrite, has_stream_ ? handle_.id : obs::kNoStream);
  while (write_pos_ < write_buf_.size()) {
    const ssize_t n = ::send(fd_, write_buf_.data() + write_pos_,
                             write_buf_.size() - write_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      last_activity_us_ = steady_now_us();
      last_write_progress_us_ = last_activity_us_;
      if (telemetry_ != nullptr) {
        telemetry_->net().bytes_out->add(static_cast<std::uint64_t>(n));
      }
      write_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // EPOLLOUT later
    if (errno == EINTR) continue;
    dead_ = true;
    return;
  }
  // Fully flushed: reclaim the buffer so long streams don't accrete.
  write_buf_.clear();
  write_pos_ = 0;
}

void Connection::on_writable() { try_flush(); }

void Connection::fail(WireError error, std::string_view message) {
  RT_LOG(Debug, "net") << "stream=" << (has_stream_ ? handle_.id : 0)
                       << " failing connection: " << message;
  if (error == WireError::kProtocol && telemetry_ != nullptr) {
    telemetry_->net().protocol_errors->add(1);
  }
  release_stream();
  std::vector<std::uint8_t> encoded;
  append_error(encoded, error, message);
  if (write_buf_.size() - write_pos_ + encoded.size() <= max_write_buffer_) {
    note_queueing();
    write_buf_.insert(write_buf_.end(), encoded.begin(), encoded.end());
  }
  want_close_ = true;
}

void Connection::note_queueing() {
  if (write_pos_ >= write_buf_.size()) {
    last_write_progress_us_ = steady_now_us();
  }
}

void Connection::expire_idle() {
  if (dead_ || want_close_) return;
  if (telemetry_ != nullptr) telemetry_->fault().reaped_connections->add(1);
  fail(WireError::kTimeout, "connection idle past the server's deadline");
}

void Connection::expire_write_stalled() {
  if (dead_) return;
  RT_LOG(Info, "net") << "stream=" << (has_stream_ ? handle_.id : 0)
                      << " dropping write-stalled connection";
  if (telemetry_ != nullptr) telemetry_->fault().reaped_connections->add(1);
  release_stream();
  dead_ = true;
}

}  // namespace rtmobile::net
