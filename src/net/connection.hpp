// One accepted TCP connection = one recognizer stream.
//
// The connection owns the socket, the deframer, the outbound byte
// buffer, and the per-stream protocol state machine; the server above it
// owns only the epoll loop. All methods run on the server's event-loop
// thread, so no locking — concurrency lives inside the Recognizer.
//
// Backpressure, both directions:
//  - ingress: when Recognizer::submit_audio / finish_stream /
//    close_stream report backpressure (false), the rejected operation is
//    parked and the connection pauses — it stops reading its socket and
//    stops consuming buffered frames, so the kernel receive buffer fills
//    and TCP pushes back on the client. pump_pending() retries each loop
//    iteration; progress resumes reading.
//  - egress: event frames queue in an in-memory write buffer so a
//    compute thread never blocks on a slow client socket. A client that
//    reads so slowly the buffer would exceed its cap is dropped as a
//    slow consumer (the protective cap is the contract: bounded memory
//    per connection).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/wire_protocol.hpp"
#include "serve/recognizer.hpp"

namespace rtmobile::obs {
class Telemetry;
}

namespace rtmobile::fault {
class FaultInjector;
}

namespace rtmobile::net {

class Connection {
 public:
  /// Takes ownership of the (non-blocking) socket `fd`.
  /// `max_write_buffer` caps queued outbound bytes (slow-consumer
  /// limit). `telemetry` (nullable) receives wire byte counters,
  /// protocol-error / slow-consumer / ingress-pause counts, and
  /// socket-write spans. `fault` (nullable) arms the kConnRead /
  /// kConnWrite injection sites — a fired site behaves exactly like a
  /// peer reset at that point.
  Connection(int fd, serve::Recognizer& recognizer,
             std::size_t max_write_buffer,
             obs::Telemetry* telemetry = nullptr,
             fault::FaultInjector* fault = nullptr);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] int fd() const { return fd_; }

  /// Socket became readable: drain it (edge-triggered contract) unless
  /// paused by ingress backpressure, then run the protocol machine.
  void on_readable();
  /// Socket became writable: flush the outbound buffer.
  void on_writable();
  /// Retries parked recognizer operations; on progress, resumes the
  /// paused read path (including bytes that arrived while paused).
  void pump_pending();
  /// Queues one hypothesis event for this connection's stream. The
  /// final event also releases the recognizer stream.
  void deliver_event(const speech::StreamEvent& event);
  /// Attempts to flush queued outbound bytes now (call after queueing).
  void try_flush();

  /// True while a backpressured operation is parked (reads are paused).
  [[nodiscard]] bool paused() const {
    return !pending_audio_.empty() || pending_finish_ || pending_close_;
  }
  /// Outbound bytes still queued (the server arms EPOLLOUT on this).
  [[nodiscard]] bool wants_write() const {
    return write_pos_ < write_buf_.size();
  }
  /// The connection is finished (failed, or closed and flushed) and the
  /// server should destroy it.
  [[nodiscard]] bool should_drop() const {
    return dead_ || (want_close_ && !wants_write());
  }
  /// The recognizer stream this connection fronts. Only meaningful when
  /// has_stream() — 0 is a *valid* handle id (ShardedEngine's first
  /// slot), so it cannot double as a none sentinel.
  [[nodiscard]] std::uint64_t handle_id() const { return handle_.id; }
  [[nodiscard]] bool has_stream() const { return has_stream_; }
  /// True once the stream's final event has been queued to the wire.
  [[nodiscard]] bool finished() const { return saw_final_; }

  // ---- connection deadlines (driven by the server's timer sweep) ----
  /// Steady-clock stamp (us) of the last socket activity in either
  /// direction — what the server's idle timer measures against.
  [[nodiscard]] std::uint64_t last_activity_us() const {
    return last_activity_us_;
  }
  /// Steady-clock stamp (us) of the last outbound progress while bytes
  /// were queued (re-stamped whenever the buffer goes from empty to
  /// non-empty) — what the write-stall timer measures against.
  [[nodiscard]] std::uint64_t last_write_progress_us() const {
    return last_write_progress_us_;
  }
  /// Idle deadline expired: best-effort typed kTimeout error, then
  /// close-after-flush (the socket is presumed still writable).
  void expire_idle();
  /// Write-stall deadline expired: the socket is not draining, so there
  /// is no way to deliver an error frame — drop immediately.
  void expire_write_stalled();

 private:
  void process_frames();
  void dispatch(const Frame& frame);
  void handle_open(const Frame& frame);
  void handle_audio(const Frame& frame);
  void handle_finish();
  void handle_close();
  /// Queues a typed terminal error and schedules close-after-flush.
  void fail(WireError error, std::string_view message);
  /// Releases the recognizer stream (parking the close on backpressure).
  void release_stream();
  [[nodiscard]] bool queue_bytes_ok(std::size_t incoming);
  /// Counts one transition into the ingress-paused state.
  void note_ingress_pause();

  /// Stamps write progress before queueing when the buffer was empty —
  /// a stall clock must start when bytes first wait, not when the buffer
  /// last happened to drain.
  void note_queueing();

  int fd_;
  serve::Recognizer& recognizer_;
  const std::size_t max_write_buffer_;
  obs::Telemetry* telemetry_;  // non-owning; null = observability off
  fault::FaultInjector* fault_;  // non-owning; null = no injection

  std::uint64_t last_activity_us_ = 0;
  std::uint64_t last_write_progress_us_ = 0;

  FrameDecoder decoder_;
  std::vector<std::uint8_t> write_buf_;
  std::size_t write_pos_ = 0;

  serve::StreamHandle handle_{};
  bool has_stream_ = false;
  bool finish_sent_ = false;  // kFinish forwarded to the recognizer
  bool saw_final_ = false;    // final event queued to the wire
  bool want_close_ = false;   // close once the write buffer drains
  bool dead_ = false;         // drop immediately (peer gone / fatal)

  // Parked backpressured operations (see file comment).
  std::vector<float> pending_audio_;
  bool pending_finish_ = false;
  bool pending_close_ = false;
  bool read_ready_while_paused_ = false;

  std::vector<float> audio_scratch_;  // decode_audio target, reused
};

}  // namespace rtmobile::net
