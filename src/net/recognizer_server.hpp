// Async epoll TCP front for any serve::Recognizer.
//
// One event-loop thread multiplexes every connection over edge-triggered
// epoll: non-blocking accept, reads deframed into recognizer calls,
// hypothesis events fanned back out through per-connection write buffers
// (see connection.hpp for both backpressure directions). The recognizer
// below is interchangeable — a LocalRecognizer served inline by the loop
// (drive_recognizer = true, the loop calls drain() between socket work)
// or a started ShardedEngine whose pump threads serve concurrently
// (drive_recognizer = false; a notifier thread parked in
// Recognizer::wait_for_events tickles the loop's eventfd when pumps
// publish events, so the loop never spin-polls).
//
// Two driving modes:
//  - start()/stop(): a background thread owns the loop (production).
//  - run_once(timeout): the caller is the loop (deterministic tests —
//    no hidden thread, every iteration observable).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/connection.hpp"
#include "serve/recognizer.hpp"

namespace rtmobile::net {

struct ServerConfig {
  /// Dotted-quad address to bind. Loopback by default: exposing a
  /// recognizer beyond the host is a deliberate act.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port().
  std::uint16_t port = 0;
  int backlog = 128;
  /// Per-connection outbound cap — the slow-consumer drop threshold.
  std::size_t max_write_buffer = 4U << 20;
  /// True: the loop calls Recognizer::drain() every iteration (the
  /// caller-driven implementations — LocalRecognizer). False: serving
  /// threads already pump (a started ShardedEngine); the loop only
  /// waits on wait_for_events via the notifier thread.
  bool drive_recognizer = true;
  /// Observability sink (nullable). When set, the server counts
  /// accepts/closes/bytes/drops into it AND opens a second listen port
  /// serving `GET /metrics` (Prometheus text) and `GET /metrics.json`
  /// over HTTP/1.0 on the same epoll loop — `curl :metrics_port/metrics`
  /// against a live server. Must outlive the server.
  obs::Telemetry* telemetry = nullptr;
  /// Port for the metrics listener (0 = ephemeral; read back with
  /// metrics_port()). Only bound when telemetry is set.
  std::uint16_t metrics_port = 0;
  /// Reap a connection with no socket activity in either direction for
  /// this long (0 = never). The client gets a typed kTimeout error
  /// before the close. Self-defense against dead/half-open peers that
  /// would otherwise hold stream slots forever.
  std::chrono::milliseconds idle_timeout{0};
  /// Drop a connection whose queued outbound bytes have made no progress
  /// for this long (0 = never). No error frame is possible — the socket
  /// is the thing that is stuck.
  std::chrono::milliseconds write_stall_timeout{0};
  /// Fault-injection harness (nullable). Arms the kConnRead/kConnWrite
  /// sites on every accepted connection. Must outlive the server.
  fault::FaultInjector* fault = nullptr;
};

class RecognizerServer {
 public:
  /// Binds and listens immediately (throws std::runtime_error on any
  /// socket failure) but serves nothing until start() or run_once().
  RecognizerServer(serve::Recognizer& recognizer, ServerConfig config = {});
  ~RecognizerServer();

  RecognizerServer(const RecognizerServer&) = delete;
  RecognizerServer& operator=(const RecognizerServer&) = delete;

  /// The bound port (resolves port 0 to the kernel's pick).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// The metrics listener's bound port (0 when no telemetry was wired).
  [[nodiscard]] std::uint16_t metrics_port() const { return metrics_port_; }

  /// Spawns the event-loop thread (and the event notifier thread when
  /// drive_recognizer is false). Idempotent.
  void start();
  /// Stops and joins the threads; open connections stay registered and
  /// are served again if start() is called anew. Idempotent.
  void stop();

  /// One event-loop iteration: wait up to `timeout` for socket/eventfd
  /// activity, service it, drive the recognizer (drive mode), fan events
  /// out, retry parked operations, reap dead connections. Returns the
  /// number of epoll events serviced. Only valid while no background
  /// thread runs.
  std::size_t run_once(std::chrono::milliseconds timeout);

  [[nodiscard]] std::size_t connection_count() const {
    return live_connections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t accepted_total() const {
    return accepted_total_.load(std::memory_order_relaxed);
  }

 private:
  void accept_ready();
  void service(int fd, std::uint32_t events);
  /// Post-socket-work phase: drive, fan out events, retry, flush, reap.
  void pump();
  /// Expires idle / write-stalled connections against the config timers
  /// (no-op when both are 0); reap() then collects them.
  void expire_connections();
  /// Milliseconds until the earliest connection deadline, clamped to
  /// `budget` — run_once's epoll wait must not sleep past a deadline.
  [[nodiscard]] int deadline_capped_wait_ms(int budget) const;
  void reap();
  void wake();
  void publish_connection_count();

  // ---- metrics endpoint (second listen port, same epoll loop) ----
  /// A scrape connection: tiny HTTP/1.0 request in, one rendered
  /// response out, close. Kept separate from Connection — it speaks
  /// HTTP, owns no recognizer stream, and never backpressures anything.
  struct HttpClient {
    std::string in;
    std::string out;
    std::size_t out_pos = 0;
    bool responded = false;
    bool dead = false;
  };
  void accept_metrics_ready();
  void service_http(int fd, std::uint32_t events);
  void respond_http(HttpClient& client);
  void flush_http(int fd, HttpClient& client);

  serve::Recognizer& recognizer_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int metrics_listen_fd_ = -1;  // -1 when no telemetry was wired
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: stop requests + event-notifier ticks
  std::uint16_t port_ = 0;
  std::uint16_t metrics_port_ = 0;

  struct Entry {
    std::unique_ptr<Connection> conn;
    bool mapped = false;              // handle registered in by_handle_
    std::uint64_t mapped_handle = 0;  // key into by_handle_ when mapped
  };
  std::unordered_map<int, Entry> connections_;           // by fd
  std::unordered_map<int, HttpClient> http_clients_;     // by fd
  std::unordered_map<std::uint64_t, Connection*> by_handle_;
  std::vector<serve::RecognizerEvent> event_scratch_;
  std::vector<int> reap_scratch_;

  std::atomic<bool> running_{false};
  std::thread loop_thread_;
  std::thread notifier_thread_;
  std::atomic<std::size_t> live_connections_{0};
  std::atomic<std::uint64_t> accepted_total_{0};
};

}  // namespace rtmobile::net
