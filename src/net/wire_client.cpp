#include "net/wire_client.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace rtmobile::net {

WireClient::~WireClient() { disconnect(); }

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)),
      send_buf_(std::move(other.send_buf_)) {}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    disconnect();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
    send_buf_ = std::move(other.send_buf_);
  }
  return *this;
}

void WireClient::connect(const std::string& address, std::uint16_t port) {
  RT_CHECK(fd_ < 0, "WireClient is already connected");
  host_ = address;
  port_ = port;
  decoder_ = FrameDecoder{};  // a reconnect must not inherit stale bytes
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  RT_CHECK(fd_ >= 0, "client socket creation failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  RT_CHECK(::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) == 1,
           "invalid server address");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    RT_CHECK(false, "connect failed (server not listening?)");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void WireClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WireClient::send_bytes(const std::vector<std::uint8_t>& bytes) {
  RT_CHECK(fd_ >= 0, "WireClient is not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    RT_CHECK(false, "send failed (server closed the connection?)");
  }
}

void WireClient::send_open(const OpenRequest& request) {
  send_buf_.clear();
  append_open(send_buf_, request);
  send_bytes(send_buf_);
}

void WireClient::send_audio(std::span<const float> samples) {
  send_buf_.clear();
  append_audio(send_buf_, samples);
  send_bytes(send_buf_);
}

void WireClient::send_finish() {
  send_buf_.clear();
  append_finish(send_buf_);
  send_bytes(send_buf_);
}

void WireClient::send_close() {
  send_buf_.clear();
  append_close(send_buf_);
  send_bytes(send_buf_);
}

std::optional<ServerMessage> WireClient::read_message() {
  RT_CHECK(fd_ >= 0, "WireClient is not connected");
  Frame frame;
  std::array<std::uint8_t, 16384> chunk;
  while (!decoder_.next(frame)) {
    RT_CHECK(!decoder_.failed(), "garbled frame from server");
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n == 0) return std::nullopt;  // orderly close
    if (n < 0) {
      if (errno == EINTR) continue;
      RT_CHECK(false, "recv failed");
    }
    decoder_.feed({chunk.data(), static_cast<std::size_t>(n)});
  }

  ServerMessage message;
  message.type = frame.type;
  switch (frame.type) {
    case FrameType::kOpened:
      RT_CHECK(decode_opened(frame.payload, message.handle_id),
               "malformed opened payload");
      return message;
    case FrameType::kPartial:
    case FrameType::kFinal:
    case FrameType::kDegraded:
    case FrameType::kRejected:
    case FrameType::kAborted:
      RT_CHECK(decode_event(frame.payload, message.event),
               "malformed event payload");
      return message;
    case FrameType::kError:
      RT_CHECK(
          decode_error(frame.payload, message.error, message.error_message),
          "malformed error payload");
      return message;
    default:
      RT_CHECK(false, "unexpected frame type from server");
  }
  return message;  // unreachable
}

std::optional<std::uint64_t> WireClient::open(const OpenRequest& request,
                                              WireError* error) {
  send_open(request);
  for (;;) {
    const std::optional<ServerMessage> message = read_message();
    RT_CHECK(message.has_value(), "server closed during open handshake");
    if (message->type == FrameType::kOpened) return message->handle_id;
    if (message->type == FrameType::kError) {
      if (error != nullptr) *error = message->error;
      return std::nullopt;
    }
    // Any other frame before kOpened is a server bug.
    RT_CHECK(false, "unexpected reply to open");
  }
}

std::optional<std::uint64_t> WireClient::open_with_retry(
    const OpenRequest& request, const OpenRetryPolicy& policy,
    WireError* error) {
  RT_CHECK(!host_.empty(), "open_with_retry needs a prior connect()");
  Rng jitter(policy.jitter_seed);
  std::chrono::milliseconds backoff = policy.initial_backoff;
  WireError last_error = WireError::kBackpressureOverflow;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Full jitter on the exponential window: sleep uniform(0, backoff]
      // so retrying clients spread out instead of re-colliding.
      const auto window = static_cast<float>(backoff.count());
      const auto sleep_ms =
          static_cast<std::int64_t>(jitter.uniform(1.0F, window));
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff = std::min(backoff * 2, policy.max_backoff);
    }
    try {
      if (!connected()) connect(host_, port_);
      WireError open_error = WireError::kProtocol;
      const std::optional<std::uint64_t> handle = open(request, &open_error);
      if (handle.has_value()) return handle;
      last_error = open_error;
      if (open_error != WireError::kBackpressureOverflow) {
        // Typed non-transient refusal (over budget, protocol, …):
        // retrying cannot change the answer.
        if (error != nullptr) *error = open_error;
        return std::nullopt;
      }
    } catch (const std::exception&) {
      // Connect refused or server closed mid-handshake: transient.
      last_error = WireError::kBackpressureOverflow;
    }
    // The server closes the connection after a typed refusal; start the
    // next attempt from a clean socket either way.
    disconnect();
  }
  if (error != nullptr) *error = last_error;
  return std::nullopt;
}

std::optional<WireError> WireClient::collect_until_final(
    std::vector<speech::StreamEvent>& events) {
  for (;;) {
    const std::optional<ServerMessage> message = read_message();
    RT_CHECK(message.has_value(), "server closed before the final event");
    if (message->type == FrameType::kError) return message->error;
    events.push_back(message->event);
    if (message->event.is_final) return std::nullopt;
  }
}

}  // namespace rtmobile::net
