// Length-prefixed binary wire protocol of the TCP serving front.
//
// Every frame is `[u32 LE frame_len][u8 type][payload]`, where frame_len
// counts the type byte plus the payload (so a valid frame_len is >= 1).
// One TCP connection carries exactly one recognizer stream:
//
//   client -> server   kOpen    StreamConfig fields (decode mode, greedy
//                               knobs, deadline budget, session key)
//                      kAudio   LE f32 samples (frame-aligned, any chunking)
//                      kFinish  end of audio
//                      kClose   release the stream (server closes the
//                               connection after flushing)
//   server -> client   kOpened  u64 stream handle id
//                      kPartial / kFinal / kDegraded / kRejected
//                               one serialized speech::StreamEvent each;
//                               the frame type mirrors the event so thin
//                               clients can dispatch without parsing, and
//                               the payload carries the full event so
//                               decode_event reconstructs it bit-identical
//                               to a direct Recognizer::poll_events call
//                      kError   u16 typed code + UTF-8 message, terminal
//
// All integers are little-endian; floats are IEEE-754 bit patterns in
// little-endian byte order. The codec is transport-agnostic byte-vector
// in / byte-vector out, so tests fuzz it without sockets.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/recognizer.hpp"
#include "speech/streaming_decoder.hpp"

namespace rtmobile::net {

/// Default ceiling on frame_len: bounds per-connection buffering so a
/// hostile length prefix (up to 0xFFFFFFFF) cannot make the server
/// attempt a gigabyte allocation. 16 MiB holds ~4 min of 16 kHz f32
/// audio in one frame — far beyond the chunk sizes any sane client
/// sends. Deployments can tighten it per decoder via
/// FrameDecoder::set_max_frame_bytes.
inline constexpr std::uint32_t kMaxFrameBytes = 16U << 20;

enum class FrameType : std::uint8_t {
  // client -> server
  kOpen = 0x01,
  kAudio = 0x02,
  kFinish = 0x03,
  kClose = 0x04,
  // server -> client
  kOpened = 0x81,
  kPartial = 0x82,
  kFinal = 0x83,
  kDegraded = 0x84,
  kRejected = 0x85,
  kError = 0x86,
  kAborted = 0x87,  // terminal: serving layer lost the stream
};

[[nodiscard]] const char* to_string(FrameType type);

/// Typed failure codes carried by kError frames.
enum class WireError : std::uint16_t {
  kProtocol = 1,            // malformed frame / bad state machine order
  kRejectedOverBudget = 2,  // open-time admission control refused
  kBackpressureOverflow = 3,  // ingress congestion exhausted retries
  kServerError = 4,           // recognizer threw serving the stream
  kSlowConsumer = 5,  // client read too slowly; write buffer overflowed
  kFrameTooLarge = 6,  // declared frame_len above the decoder's max
  kTimeout = 7,        // idle/write-stall deadline expired server-side
};

[[nodiscard]] const char* to_string(WireError error);

/// The kOpen payload: the StreamConfig fields a remote client controls.
struct OpenRequest {
  std::uint8_t decode_mode =
      static_cast<std::uint8_t>(speech::DecodeMode::kGreedy);
  std::uint32_t smooth_window = 3;
  std::uint32_t min_run = 2;
  double switch_penalty = 4.0;
  double deadline_budget_seconds = 0.0;  // 0 = no deadline
  std::uint64_t session_key = 0;

  /// The server-side translation into the serve-layer open config.
  [[nodiscard]] serve::StreamConfig to_stream_config() const;
  /// The client-side translation from one (examples/bench reuse it).
  [[nodiscard]] static OpenRequest from_stream_config(
      const serve::StreamConfig& config);
};

// ---- encoding (append one whole frame to `out`) ----

void append_open(std::vector<std::uint8_t>& out, const OpenRequest& request);
void append_audio(std::vector<std::uint8_t>& out,
                  std::span<const float> samples);
void append_finish(std::vector<std::uint8_t>& out);
void append_close(std::vector<std::uint8_t>& out);
void append_opened(std::vector<std::uint8_t>& out, std::uint64_t handle_id);
/// Picks kPartial/kFinal/kDegraded/kRejected from the event itself.
void append_event(std::vector<std::uint8_t>& out,
                  const speech::StreamEvent& event);
void append_error(std::vector<std::uint8_t>& out, WireError error,
                  std::string_view message);

// ---- payload decoding (all reject short/trailing/garbled payloads) ----

[[nodiscard]] bool decode_open(std::span<const std::uint8_t> payload,
                               OpenRequest& out);
/// Appends the samples to `out`; payload must be a multiple of 4 bytes.
[[nodiscard]] bool decode_audio(std::span<const std::uint8_t> payload,
                                std::vector<float>& out);
[[nodiscard]] bool decode_opened(std::span<const std::uint8_t> payload,
                                 std::uint64_t& handle_id);
/// Reconstructs the exact StreamEvent append_event serialized.
[[nodiscard]] bool decode_event(std::span<const std::uint8_t> payload,
                                speech::StreamEvent& out);
[[nodiscard]] bool decode_error(std::span<const std::uint8_t> payload,
                                WireError& error, std::string& message);

/// One decoded frame. The payload is a copy (stable until the next
/// FrameDecoder::next call consumes the buffer behind it is a non-issue).
struct Frame {
  FrameType type = FrameType::kOpen;
  std::vector<std::uint8_t> payload;
};

/// Incremental deframer: feed() arbitrary byte chunks as the socket
/// yields them, next() pops complete frames. Tolerates any fragmentation
/// (a frame split across dozens of reads, many frames in one read).
/// A frame_len of 0 or beyond max_frame_bytes() is unrecoverable — the
/// stream has lost sync — so the decoder latches failed() (with a typed
/// reason) and next() returns nothing from then on. The length check
/// runs before any buffering of the frame body, so a crafted 0xFFFFFFFF
/// prefix never turns into an allocation.
class FrameDecoder {
 public:
  void feed(std::span<const std::uint8_t> bytes);
  /// Pops the next complete frame into `frame`; false when more bytes
  /// are needed (or the decoder failed).
  [[nodiscard]] bool next(Frame& frame);
  [[nodiscard]] bool failed() const { return failed_; }
  /// Why the decoder latched: kFrameTooLarge for an oversized declared
  /// length, kProtocol otherwise. Meaningful only when failed().
  [[nodiscard]] WireError failure() const { return failure_; }
  /// Tightens (or widens) the per-frame length ceiling; takes effect on
  /// the next length prefix examined.
  void set_max_frame_bytes(std::uint32_t max) { max_frame_bytes_ = max; }
  [[nodiscard]] std::uint32_t max_frame_bytes() const {
    return max_frame_bytes_;
  }
  /// Bytes buffered but not yet consumed as frames.
  [[nodiscard]] std::size_t buffered_bytes() const {
    return buffer_.size() - consumed_;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool failed_ = false;
  WireError failure_ = WireError::kProtocol;
  std::uint32_t max_frame_bytes_ = kMaxFrameBytes;
};

}  // namespace rtmobile::net
