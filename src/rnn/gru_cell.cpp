#include "rnn/gru_cell.hpp"

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace rtmobile {

GruParams::GruParams(std::size_t input_dim, std::size_t hidden_dim)
    : w_z(hidden_dim, input_dim),
      w_r(hidden_dim, input_dim),
      w_h(hidden_dim, input_dim),
      u_z(hidden_dim, hidden_dim),
      u_r(hidden_dim, hidden_dim),
      u_h(hidden_dim, hidden_dim),
      b_z(hidden_dim),
      b_r(hidden_dim),
      b_h(hidden_dim) {
  RT_REQUIRE(input_dim > 0 && hidden_dim > 0,
             "GRU dimensions must be positive");
}

std::size_t GruParams::param_count() const {
  return w_z.size() + w_r.size() + w_h.size() + u_z.size() + u_r.size() +
         u_h.size() + b_z.size() + b_r.size() + b_h.size();
}

void GruParams::init(Rng& rng) {
  xavier_init(w_z, rng);
  xavier_init(w_r, rng);
  xavier_init(w_h, rng);
  recurrent_init(u_z, rng);
  recurrent_init(u_r, rng);
  recurrent_init(u_h, rng);
  b_z.fill(0.0F);
  b_r.fill(0.0F);
  b_h.fill(0.0F);
}

void GruParams::zero() {
  w_z.fill(0.0F);
  w_r.fill(0.0F);
  w_h.fill(0.0F);
  u_z.fill(0.0F);
  u_r.fill(0.0F);
  u_h.fill(0.0F);
  b_z.fill(0.0F);
  b_r.fill(0.0F);
  b_h.fill(0.0F);
}

void GruParams::register_params(const std::string& prefix, ParamSet& set) {
  set.add(prefix + "w_z", &w_z);
  set.add(prefix + "w_r", &w_r);
  set.add(prefix + "w_h", &w_h);
  set.add(prefix + "u_z", &u_z);
  set.add(prefix + "u_r", &u_r);
  set.add(prefix + "u_h", &u_h);
  set.add(prefix + "b_z", &b_z);
  set.add(prefix + "b_r", &b_r);
  set.add(prefix + "b_h", &b_h);
}

void gru_forward_step(const GruParams& params, std::span<const float> x,
                      std::span<const float> h_prev, std::span<float> h_out,
                      GruStepCache* cache) {
  const std::size_t hidden = params.hidden_dim();
  RT_REQUIRE(x.size() == params.input_dim(), "GRU forward: x size mismatch");
  RT_REQUIRE(h_prev.size() == hidden, "GRU forward: h_prev size mismatch");
  RT_REQUIRE(h_out.size() == hidden, "GRU forward: h_out size mismatch");

  Vector z(hidden);
  Vector r(hidden);
  Vector rh(hidden);
  Vector h_tilde(hidden);

  // z = sigmoid(W_z x + U_z h_prev + b_z)
  gemv(params.w_z, x, z.span());
  gemv_accumulate(params.u_z, h_prev, z.span());
  add_inplace(z.span(), params.b_z.span());
  sigmoid_inplace(z.span());

  // r = sigmoid(W_r x + U_r h_prev + b_r)
  gemv(params.w_r, x, r.span());
  gemv_accumulate(params.u_r, h_prev, r.span());
  add_inplace(r.span(), params.b_r.span());
  sigmoid_inplace(r.span());

  // h~ = tanh(W_h x + U_h (r . h_prev) + b_h)
  mul(r.span(), h_prev, rh.span());
  gemv(params.w_h, x, h_tilde.span());
  gemv_accumulate(params.u_h, rh.span(), h_tilde.span());
  add_inplace(h_tilde.span(), params.b_h.span());
  tanh_inplace(h_tilde.span());

  // h = (1 - z) . h_prev + z . h~   (written last so h_out may alias h_prev)
  if (cache != nullptr) {
    cache->x.resize(x.size());
    std::copy(x.begin(), x.end(), cache->x.begin());
    cache->h_prev.resize(hidden);
    std::copy(h_prev.begin(), h_prev.end(), cache->h_prev.begin());
  }
  for (std::size_t i = 0; i < hidden; ++i) {
    h_out[i] = (1.0F - z[i]) * h_prev[i] + z[i] * h_tilde[i];
  }

  if (cache != nullptr) {
    cache->z = std::move(z);
    cache->r = std::move(r);
    cache->rh = std::move(rh);
    cache->h_tilde = std::move(h_tilde);
    cache->h.resize(hidden);
    std::copy(h_out.begin(), h_out.end(), cache->h.begin());
  }
}

void gru_backward_step(const GruParams& params, const GruStepCache& cache,
                       std::span<const float> dh, GruParams& grads,
                       std::span<float> dx, std::span<float> dh_prev) {
  const std::size_t hidden = params.hidden_dim();
  const std::size_t input = params.input_dim();
  RT_REQUIRE(dh.size() == hidden, "GRU backward: dh size mismatch");
  RT_REQUIRE(dx.size() == input, "GRU backward: dx size mismatch");
  RT_REQUIRE(dh_prev.size() == hidden, "GRU backward: dh_prev size mismatch");
  RT_REQUIRE(cache.h_prev.size() == hidden && cache.x.size() == input,
             "GRU backward: cache shape mismatch");

  // h = (1-z) h_prev + z h~
  Vector da_z(hidden);   // gradient at update-gate pre-activation
  Vector da_r(hidden);   // gradient at reset-gate pre-activation
  Vector da_h(hidden);   // gradient at candidate pre-activation
  Vector d_rh(hidden);   // gradient at r . h_prev

  for (std::size_t i = 0; i < hidden; ++i) {
    const float dhi = dh[i];
    const float dz = dhi * (cache.h_tilde[i] - cache.h_prev[i]);
    const float dht = dhi * cache.z[i];
    dh_prev[i] = dhi * (1.0F - cache.z[i]);
    da_z[i] = dz * sigmoid_grad_from_output(cache.z[i]);
    da_h[i] = dht * tanh_grad_from_output(cache.h_tilde[i]);
  }

  // Candidate path: a_h = W_h x + U_h rh + b_h.
  outer_accumulate(1.0F, da_h.span(), cache.x.span(), grads.w_h);
  outer_accumulate(1.0F, da_h.span(), cache.rh.span(), grads.u_h);
  add_inplace(grads.b_h.span(), da_h.span());
  gemv_transposed(params.u_h, da_h.span(), d_rh.span());
  for (std::size_t i = 0; i < hidden; ++i) {
    const float dr = d_rh[i] * cache.h_prev[i];
    dh_prev[i] += d_rh[i] * cache.r[i];
    da_r[i] = dr * sigmoid_grad_from_output(cache.r[i]);
  }

  // Gate paths: a_z = W_z x + U_z h_prev + b_z (and likewise for r).
  outer_accumulate(1.0F, da_z.span(), cache.x.span(), grads.w_z);
  outer_accumulate(1.0F, da_z.span(), cache.h_prev.span(), grads.u_z);
  add_inplace(grads.b_z.span(), da_z.span());
  gemv_transposed_accumulate(params.u_z, da_z.span(), dh_prev);

  outer_accumulate(1.0F, da_r.span(), cache.x.span(), grads.w_r);
  outer_accumulate(1.0F, da_r.span(), cache.h_prev.span(), grads.u_r);
  add_inplace(grads.b_r.span(), da_r.span());
  gemv_transposed_accumulate(params.u_r, da_r.span(), dh_prev);

  // Input gradient through all three input matrices.
  gemv_transposed(params.w_z, da_z.span(), dx);
  gemv_transposed_accumulate(params.w_r, da_r.span(), dx);
  gemv_transposed_accumulate(params.w_h, da_h.span(), dx);
}

}  // namespace rtmobile
