#include "rnn/param_set.hpp"

#include "util/check.hpp"

namespace rtmobile {

void ParamSet::add(std::string name, Matrix* matrix, bool is_weight) {
  RT_REQUIRE(matrix != nullptr, "null matrix registered: " + name);
  matrices_.push_back({std::move(name), matrix, is_weight});
}

void ParamSet::add(std::string name, Vector* vector) {
  RT_REQUIRE(vector != nullptr, "null vector registered: " + name);
  vectors_.push_back({std::move(name), vector});
}

std::size_t ParamSet::total_size() const {
  std::size_t total = 0;
  for (const auto& entry : matrices_) total += entry.tensor->size();
  for (const auto& entry : vectors_) total += entry.tensor->size();
  return total;
}

Matrix& ParamSet::matrix(const std::string& name) const {
  for (const auto& entry : matrices_) {
    if (entry.name == name) return *entry.tensor;
  }
  RT_REQUIRE(false, "no such matrix parameter: " + name);
  // Unreachable; RT_REQUIRE throws.
  throw std::invalid_argument(name);
}

void ParamSet::for_each_span(
    const std::function<void(const std::string&, std::span<float>)>& visit)
    const {
  for (const auto& entry : matrices_) visit(entry.name, entry.tensor->span());
  for (const auto& entry : vectors_) visit(entry.name, entry.tensor->span());
}

void ParamSet::for_each_pair(
    const ParamSet& params, const ParamSet& grads,
    const std::function<void(const std::string&, std::span<float>,
                             std::span<float>)>& visit) {
  RT_REQUIRE(params.matrices_.size() == grads.matrices_.size() &&
                 params.vectors_.size() == grads.vectors_.size(),
             "param/grad sets have different layouts");
  for (std::size_t i = 0; i < params.matrices_.size(); ++i) {
    const auto& p = params.matrices_[i];
    const auto& g = grads.matrices_[i];
    RT_REQUIRE(p.name == g.name && p.tensor->rows() == g.tensor->rows() &&
                   p.tensor->cols() == g.tensor->cols(),
               "param/grad mismatch at " + p.name);
    visit(p.name, p.tensor->span(), g.tensor->span());
  }
  for (std::size_t i = 0; i < params.vectors_.size(); ++i) {
    const auto& p = params.vectors_[i];
    const auto& g = grads.vectors_[i];
    RT_REQUIRE(p.name == g.name && p.tensor->size() == g.tensor->size(),
               "param/grad mismatch at " + p.name);
    visit(p.name, p.tensor->span(), g.tensor->span());
  }
}

}  // namespace rtmobile
