#include "rnn/model.hpp"

#include <fstream>

#include "tensor/gemm.hpp"
#include "tensor/io.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace rtmobile {

ModelConfig ModelConfig::paper_full_size() {
  return ModelConfig{/*input_dim=*/153, /*hidden_dim=*/1024,
                     /*num_layers=*/2, /*num_classes=*/39};
}

ModelConfig ModelConfig::scaled(std::size_t hidden) {
  return ModelConfig{/*input_dim=*/39, /*hidden_dim=*/hidden,
                     /*num_layers=*/2, /*num_classes=*/39};
}

SpeechModel::SpeechModel(const ModelConfig& config) : config_(config) {
  RT_REQUIRE(config.num_layers >= 1, "model needs at least one GRU layer");
  RT_REQUIRE(config.input_dim > 0 && config.hidden_dim > 0 &&
                 config.num_classes > 0,
             "model dimensions must be positive");
  layers_.reserve(config.num_layers);
  for (std::size_t l = 0; l < config.num_layers; ++l) {
    const std::size_t in = l == 0 ? config.input_dim : config.hidden_dim;
    layers_.emplace_back(in, config.hidden_dim);
  }
  fc_w_ = Matrix(config.num_classes, config.hidden_dim);
  fc_b_ = Vector(config.num_classes);
}

void SpeechModel::init(Rng& rng) {
  for (auto& layer : layers_) layer.init(rng);
  xavier_init(fc_w_, rng);
  fc_b_.fill(0.0F);
}

std::size_t SpeechModel::param_count() const {
  std::size_t count = fc_w_.size() + fc_b_.size();
  for (const auto& layer : layers_) count += layer.param_count();
  return count;
}

std::size_t SpeechModel::nonzero_param_count() const {
  ParamSet set;
  const_cast<SpeechModel*>(this)->register_params(set);
  std::size_t count = 0;
  for (const auto& entry : set.matrices()) {
    if (entry.is_weight) {
      count += entry.tensor->count_nonzero();
    } else {
      count += entry.tensor->size();
    }
  }
  for (const auto& entry : set.vectors()) count += entry.tensor->size();
  return count;
}

Matrix SpeechModel::forward(const Matrix& features,
                            ModelForwardCache* cache) const {
  RT_REQUIRE(features.cols() == config_.input_dim,
             "forward: feature dimension mismatch");
  const std::size_t frames = features.rows();
  RT_REQUIRE(frames > 0, "forward: empty utterance");

  if (cache != nullptr) {
    cache->caches.assign(config_.num_layers, {});
    cache->layer_inputs.clear();
    cache->layer_inputs.push_back(features);
  }

  Matrix current = features;
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    const GruParams& params = layers_[l];
    Matrix next(frames, config_.hidden_dim);
    Vector h(config_.hidden_dim, 0.0F);
    std::vector<GruStepCache>* step_caches = nullptr;
    if (cache != nullptr) {
      cache->caches[l].resize(frames);
      step_caches = &cache->caches[l];
    }
    for (std::size_t t = 0; t < frames; ++t) {
      GruStepCache* step = step_caches ? &(*step_caches)[t] : nullptr;
      gru_forward_step(params, current.row(t), h.span(), next.row(t), step);
      std::copy(next.row(t).begin(), next.row(t).end(), h.begin());
    }
    current = std::move(next);
    if (cache != nullptr) cache->layer_inputs.push_back(current);
  }

  Matrix logits(frames, config_.num_classes);
  for (std::size_t t = 0; t < frames; ++t) {
    gemv(fc_w_, current.row(t), logits.row(t));
    add_inplace(logits.row(t), fc_b_.span());
  }
  return logits;
}

void SpeechModel::backward(const ModelForwardCache& cache,
                           const Matrix& dlogits, SpeechModel& grads) const {
  RT_REQUIRE(grads.config_.hidden_dim == config_.hidden_dim &&
                 grads.config_.num_layers == config_.num_layers &&
                 grads.config_.input_dim == config_.input_dim &&
                 grads.config_.num_classes == config_.num_classes,
             "backward: gradient model configuration mismatch");
  RT_REQUIRE(cache.layer_inputs.size() == config_.num_layers + 1,
             "backward: cache not produced by forward");
  const std::size_t frames = dlogits.rows();
  RT_REQUIRE(dlogits.cols() == config_.num_classes,
             "backward: dlogits shape mismatch");

  // Classifier backward: gradient wrt the top GRU layer's output.
  const Matrix& top = cache.layer_inputs.back();
  RT_REQUIRE(top.rows() == frames, "backward: frame count mismatch");
  Matrix d_top(frames, config_.hidden_dim, 0.0F);
  for (std::size_t t = 0; t < frames; ++t) {
    outer_accumulate(1.0F, dlogits.row(t), top.row(t), grads.fc_w_);
    add_inplace(grads.fc_b_.span(), dlogits.row(t));
    gemv_transposed(fc_w_, dlogits.row(t), d_top.row(t));
  }

  // BPTT through each GRU layer from top to bottom.
  Matrix d_out = std::move(d_top);  // dLoss/d(layer output), per frame
  for (std::size_t l = config_.num_layers; l-- > 0;) {
    const GruParams& params = layers_[l];
    const std::size_t in_dim = params.input_dim();
    Matrix d_in(frames, in_dim, 0.0F);
    Vector dh(config_.hidden_dim, 0.0F);
    Vector dh_prev(config_.hidden_dim, 0.0F);
    for (std::size_t t = frames; t-- > 0;) {
      // Gradient into h_t: from the layer above plus from t+1's recurrence.
      add_inplace(dh.span(), d_out.row(t));
      gru_backward_step(params, cache.caches[l][t], dh.span(), grads.layers_[l],
                        d_in.row(t), dh_prev.span());
      std::swap(dh, dh_prev);
      dh_prev.fill(0.0F);
    }
    d_out = std::move(d_in);
  }
}

void SpeechModel::zero() {
  for (auto& layer : layers_) layer.zero();
  fc_w_.fill(0.0F);
  fc_b_.fill(0.0F);
}

void SpeechModel::register_params(ParamSet& set) {
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].register_params("gru" + std::to_string(l) + ".", set);
  }
  set.add("fc.w", &fc_w_);
  set.add("fc.b", &fc_b_);
}

void SpeechModel::register_params(ParamSet& set) const {
  const_cast<SpeechModel*>(this)->register_params(set);
}

std::vector<std::string> SpeechModel::weight_names() const {
  std::vector<std::string> names;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::string prefix = "gru" + std::to_string(l) + ".";
    for (const char* w : {"w_z", "w_r", "w_h", "u_z", "u_r", "u_h"}) {
      names.push_back(prefix + w);
    }
  }
  return names;
}

GruParams& SpeechModel::layer(std::size_t index) {
  RT_REQUIRE(index < layers_.size(), "layer index out of range");
  return layers_[index];
}

const GruParams& SpeechModel::layer(std::size_t index) const {
  RT_REQUIRE(index < layers_.size(), "layer index out of range");
  return layers_[index];
}

void SpeechModel::save(std::ostream& os) const {
  ParamSet set;
  register_params(set);
  for (const auto& entry : set.matrices()) write_matrix(os, *entry.tensor);
  for (const auto& entry : set.vectors()) write_vector(os, *entry.tensor);
}

void SpeechModel::load(std::istream& is) {
  ParamSet set;
  register_params(set);
  for (const auto& entry : set.matrices()) {
    Matrix m = read_matrix(is);
    RT_CHECK(m.rows() == entry.tensor->rows() &&
                 m.cols() == entry.tensor->cols(),
             "checkpoint shape mismatch at " + entry.name);
    *entry.tensor = std::move(m);
  }
  for (const auto& entry : set.vectors()) {
    Vector v = read_vector(is);
    RT_CHECK(v.size() == entry.tensor->size(),
             "checkpoint shape mismatch at " + entry.name);
    *entry.tensor = std::move(v);
  }
}

void SpeechModel::save_file(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  RT_CHECK(file.good(), "failed to open for write: " + path);
  save(file);
}

void SpeechModel::load_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  RT_CHECK(file.good(), "failed to open for read: " + path);
  load(file);
}

}  // namespace rtmobile
