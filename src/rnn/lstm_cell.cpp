#include "rnn/lstm_cell.hpp"

#include <cmath>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace rtmobile {

LstmParams::LstmParams(std::size_t input_dim, std::size_t hidden_dim)
    : w_i(hidden_dim, input_dim),
      w_f(hidden_dim, input_dim),
      w_o(hidden_dim, input_dim),
      w_g(hidden_dim, input_dim),
      u_i(hidden_dim, hidden_dim),
      u_f(hidden_dim, hidden_dim),
      u_o(hidden_dim, hidden_dim),
      u_g(hidden_dim, hidden_dim),
      b_i(hidden_dim),
      b_f(hidden_dim),
      b_o(hidden_dim),
      b_g(hidden_dim) {
  RT_REQUIRE(input_dim > 0 && hidden_dim > 0,
             "LSTM dimensions must be positive");
}

std::size_t LstmParams::param_count() const {
  return w_i.size() + w_f.size() + w_o.size() + w_g.size() + u_i.size() +
         u_f.size() + u_o.size() + u_g.size() + b_i.size() + b_f.size() +
         b_o.size() + b_g.size();
}

void LstmParams::init(Rng& rng) {
  xavier_init(w_i, rng);
  xavier_init(w_f, rng);
  xavier_init(w_o, rng);
  xavier_init(w_g, rng);
  recurrent_init(u_i, rng);
  recurrent_init(u_f, rng);
  recurrent_init(u_o, rng);
  recurrent_init(u_g, rng);
  b_i.fill(0.0F);
  b_f.fill(1.0F);
  b_o.fill(0.0F);
  b_g.fill(0.0F);
}

void LstmParams::zero() {
  for (Matrix* m : {&w_i, &w_f, &w_o, &w_g, &u_i, &u_f, &u_o, &u_g}) {
    m->fill(0.0F);
  }
  for (Vector* v : {&b_i, &b_f, &b_o, &b_g}) v->fill(0.0F);
}

void LstmParams::register_params(const std::string& prefix, ParamSet& set) {
  set.add(prefix + "w_i", &w_i);
  set.add(prefix + "w_f", &w_f);
  set.add(prefix + "w_o", &w_o);
  set.add(prefix + "w_g", &w_g);
  set.add(prefix + "u_i", &u_i);
  set.add(prefix + "u_f", &u_f);
  set.add(prefix + "u_o", &u_o);
  set.add(prefix + "u_g", &u_g);
  set.add(prefix + "b_i", &b_i);
  set.add(prefix + "b_f", &b_f);
  set.add(prefix + "b_o", &b_o);
  set.add(prefix + "b_g", &b_g);
}

void lstm_forward_step(const LstmParams& params, std::span<const float> x,
                       std::span<const float> h_prev,
                       std::span<const float> c_prev, std::span<float> h_out,
                       std::span<float> c_out, LstmStepCache* cache) {
  const std::size_t hidden = params.hidden_dim();
  RT_REQUIRE(x.size() == params.input_dim(), "LSTM forward: x size mismatch");
  RT_REQUIRE(h_prev.size() == hidden && c_prev.size() == hidden &&
                 h_out.size() == hidden && c_out.size() == hidden,
             "LSTM forward: state size mismatch");

  Vector i(hidden);
  Vector f(hidden);
  Vector o(hidden);
  Vector g(hidden);

  const auto gate = [&](const Matrix& w, const Matrix& u, const Vector& b,
                        Vector& out) {
    gemv(w, x, out.span());
    gemv_accumulate(u, h_prev, out.span());
    add_inplace(out.span(), b.span());
  };
  gate(params.w_i, params.u_i, params.b_i, i);
  gate(params.w_f, params.u_f, params.b_f, f);
  gate(params.w_o, params.u_o, params.b_o, o);
  gate(params.w_g, params.u_g, params.b_g, g);
  sigmoid_inplace(i.span());
  sigmoid_inplace(f.span());
  sigmoid_inplace(o.span());
  tanh_inplace(g.span());

  if (cache != nullptr) {
    cache->x.resize(x.size());
    std::copy(x.begin(), x.end(), cache->x.begin());
    cache->h_prev.resize(hidden);
    std::copy(h_prev.begin(), h_prev.end(), cache->h_prev.begin());
    cache->c_prev.resize(hidden);
    std::copy(c_prev.begin(), c_prev.end(), cache->c_prev.begin());
  }

  Vector c(hidden);
  Vector tanh_c(hidden);
  for (std::size_t k = 0; k < hidden; ++k) {
    c[k] = f[k] * c_prev[k] + i[k] * g[k];
    tanh_c[k] = std::tanh(c[k]);
    const float h = o[k] * tanh_c[k];
    c_out[k] = c[k];
    h_out[k] = h;
  }

  if (cache != nullptr) {
    cache->i = std::move(i);
    cache->f = std::move(f);
    cache->o = std::move(o);
    cache->g = std::move(g);
    cache->c = std::move(c);
    cache->tanh_c = std::move(tanh_c);
    cache->h.resize(hidden);
    std::copy(h_out.begin(), h_out.end(), cache->h.begin());
  }
}

void lstm_backward_step(const LstmParams& params, const LstmStepCache& cache,
                        std::span<const float> dh, std::span<const float> dc,
                        LstmParams& grads, std::span<float> dx,
                        std::span<float> dh_prev, std::span<float> dc_prev) {
  const std::size_t hidden = params.hidden_dim();
  const std::size_t input = params.input_dim();
  RT_REQUIRE(dh.size() == hidden && dc.size() == hidden,
             "LSTM backward: gradient size mismatch");
  RT_REQUIRE(dx.size() == input && dh_prev.size() == hidden &&
                 dc_prev.size() == hidden,
             "LSTM backward: output size mismatch");

  Vector da_i(hidden);
  Vector da_f(hidden);
  Vector da_o(hidden);
  Vector da_g(hidden);

  for (std::size_t k = 0; k < hidden; ++k) {
    // h = o tanh(c); total cell gradient adds dh's path through tanh(c).
    const float do_gate = dh[k] * cache.tanh_c[k];
    const float dc_total =
        dc[k] + dh[k] * cache.o[k] * tanh_grad_from_output(cache.tanh_c[k]);
    // c = f c_prev + i g
    dc_prev[k] = dc_total * cache.f[k];
    const float di = dc_total * cache.g[k];
    const float df = dc_total * cache.c_prev[k];
    const float dg = dc_total * cache.i[k];
    da_i[k] = di * sigmoid_grad_from_output(cache.i[k]);
    da_f[k] = df * sigmoid_grad_from_output(cache.f[k]);
    da_o[k] = do_gate * sigmoid_grad_from_output(cache.o[k]);
    da_g[k] = dg * tanh_grad_from_output(cache.g[k]);
  }

  const auto backprop_gate = [&](const Vector& da, Matrix& gw, Matrix& gu,
                                 Vector& gb, const Matrix& w, const Matrix& u,
                                 bool first) {
    outer_accumulate(1.0F, da.span(), cache.x.span(), gw);
    outer_accumulate(1.0F, da.span(), cache.h_prev.span(), gu);
    add_inplace(gb.span(), da.span());
    if (first) {
      gemv_transposed(w, da.span(), dx);
      gemv_transposed(u, da.span(), dh_prev);
    } else {
      gemv_transposed_accumulate(w, da.span(), dx);
      gemv_transposed_accumulate(u, da.span(), dh_prev);
    }
  };
  backprop_gate(da_i, grads.w_i, grads.u_i, grads.b_i, params.w_i, params.u_i,
                /*first=*/true);
  backprop_gate(da_f, grads.w_f, grads.u_f, grads.b_f, params.w_f, params.u_f,
                /*first=*/false);
  backprop_gate(da_o, grads.w_o, grads.u_o, grads.b_o, params.w_o, params.u_o,
                /*first=*/false);
  backprop_gate(da_g, grads.w_g, grads.u_g, grads.b_g, params.w_g, params.u_g,
                /*first=*/false);
}

}  // namespace rtmobile
