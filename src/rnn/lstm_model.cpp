#include "rnn/lstm_model.hpp"

#include "tensor/gemm.hpp"
#include "tensor/io.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace rtmobile {

LstmModel::LstmModel(const ModelConfig& config) : config_(config) {
  RT_REQUIRE(config.num_layers >= 1, "model needs at least one LSTM layer");
  RT_REQUIRE(config.input_dim > 0 && config.hidden_dim > 0 &&
                 config.num_classes > 0,
             "model dimensions must be positive");
  layers_.reserve(config.num_layers);
  for (std::size_t l = 0; l < config.num_layers; ++l) {
    const std::size_t in = l == 0 ? config.input_dim : config.hidden_dim;
    layers_.emplace_back(in, config.hidden_dim);
  }
  fc_w_ = Matrix(config.num_classes, config.hidden_dim);
  fc_b_ = Vector(config.num_classes);
}

void LstmModel::init(Rng& rng) {
  for (auto& layer : layers_) layer.init(rng);
  xavier_init(fc_w_, rng);
  fc_b_.fill(0.0F);
}

std::size_t LstmModel::param_count() const {
  std::size_t count = fc_w_.size() + fc_b_.size();
  for (const auto& layer : layers_) count += layer.param_count();
  return count;
}

std::size_t LstmModel::nonzero_param_count() const {
  ParamSet set;
  register_params(set);
  std::size_t count = 0;
  for (const auto& entry : set.matrices()) {
    count += entry.is_weight ? entry.tensor->count_nonzero()
                             : entry.tensor->size();
  }
  for (const auto& entry : set.vectors()) count += entry.tensor->size();
  return count;
}

Matrix LstmModel::forward(const Matrix& features,
                          LstmForwardCache* cache) const {
  RT_REQUIRE(features.cols() == config_.input_dim,
             "forward: feature dimension mismatch");
  const std::size_t frames = features.rows();
  RT_REQUIRE(frames > 0, "forward: empty utterance");

  if (cache != nullptr) {
    cache->caches.assign(config_.num_layers, {});
    cache->layer_inputs.clear();
    cache->layer_inputs.push_back(features);
  }

  Matrix current = features;
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    const LstmParams& params = layers_[l];
    Matrix next(frames, config_.hidden_dim);
    Vector h(config_.hidden_dim, 0.0F);
    Vector c(config_.hidden_dim, 0.0F);
    Vector c_next(config_.hidden_dim);
    std::vector<LstmStepCache>* step_caches = nullptr;
    if (cache != nullptr) {
      cache->caches[l].resize(frames);
      step_caches = &cache->caches[l];
    }
    for (std::size_t t = 0; t < frames; ++t) {
      LstmStepCache* step = step_caches ? &(*step_caches)[t] : nullptr;
      lstm_forward_step(params, current.row(t), h.span(), c.span(),
                        next.row(t), c_next.span(), step);
      std::copy(next.row(t).begin(), next.row(t).end(), h.begin());
      std::swap(c, c_next);
    }
    current = std::move(next);
    if (cache != nullptr) cache->layer_inputs.push_back(current);
  }

  Matrix logits(frames, config_.num_classes);
  for (std::size_t t = 0; t < frames; ++t) {
    gemv(fc_w_, current.row(t), logits.row(t));
    add_inplace(logits.row(t), fc_b_.span());
  }
  return logits;
}

void LstmModel::backward(const LstmForwardCache& cache, const Matrix& dlogits,
                         LstmModel& grads) const {
  RT_REQUIRE(grads.config_.hidden_dim == config_.hidden_dim &&
                 grads.config_.num_layers == config_.num_layers &&
                 grads.config_.input_dim == config_.input_dim &&
                 grads.config_.num_classes == config_.num_classes,
             "backward: gradient model configuration mismatch");
  RT_REQUIRE(cache.layer_inputs.size() == config_.num_layers + 1,
             "backward: cache not produced by forward");
  const std::size_t frames = dlogits.rows();
  RT_REQUIRE(dlogits.cols() == config_.num_classes,
             "backward: dlogits shape mismatch");

  const Matrix& top = cache.layer_inputs.back();
  RT_REQUIRE(top.rows() == frames, "backward: frame count mismatch");
  Matrix d_top(frames, config_.hidden_dim, 0.0F);
  for (std::size_t t = 0; t < frames; ++t) {
    outer_accumulate(1.0F, dlogits.row(t), top.row(t), grads.fc_w_);
    add_inplace(grads.fc_b_.span(), dlogits.row(t));
    gemv_transposed(fc_w_, dlogits.row(t), d_top.row(t));
  }

  Matrix d_out = std::move(d_top);
  for (std::size_t l = config_.num_layers; l-- > 0;) {
    const LstmParams& params = layers_[l];
    const std::size_t in_dim = params.input_dim();
    Matrix d_in(frames, in_dim, 0.0F);
    Vector dh(config_.hidden_dim, 0.0F);
    Vector dc(config_.hidden_dim, 0.0F);
    Vector dh_prev(config_.hidden_dim, 0.0F);
    Vector dc_prev(config_.hidden_dim, 0.0F);
    for (std::size_t t = frames; t-- > 0;) {
      add_inplace(dh.span(), d_out.row(t));
      lstm_backward_step(params, cache.caches[l][t], dh.span(), dc.span(),
                         grads.layers_[l], d_in.row(t), dh_prev.span(),
                         dc_prev.span());
      std::swap(dh, dh_prev);
      std::swap(dc, dc_prev);
      dh_prev.fill(0.0F);
      dc_prev.fill(0.0F);
    }
    d_out = std::move(d_in);
  }
}

void LstmModel::zero() {
  for (auto& layer : layers_) layer.zero();
  fc_w_.fill(0.0F);
  fc_b_.fill(0.0F);
}

void LstmModel::register_params(ParamSet& set) {
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].register_params("lstm" + std::to_string(l) + ".", set);
  }
  set.add("fc.w", &fc_w_);
  set.add("fc.b", &fc_b_);
}

void LstmModel::register_params(ParamSet& set) const {
  const_cast<LstmModel*>(this)->register_params(set);
}

std::vector<std::string> LstmModel::weight_names() const {
  std::vector<std::string> names;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::string prefix = "lstm" + std::to_string(l) + ".";
    for (const char* w : {"w_i", "w_f", "w_o", "w_g", "u_i", "u_f", "u_o",
                          "u_g"}) {
      names.push_back(prefix + w);
    }
  }
  return names;
}

LstmParams& LstmModel::layer(std::size_t index) {
  RT_REQUIRE(index < layers_.size(), "layer index out of range");
  return layers_[index];
}

const LstmParams& LstmModel::layer(std::size_t index) const {
  RT_REQUIRE(index < layers_.size(), "layer index out of range");
  return layers_[index];
}

void LstmModel::save(std::ostream& os) const {
  ParamSet set;
  register_params(set);
  for (const auto& entry : set.matrices()) write_matrix(os, *entry.tensor);
  for (const auto& entry : set.vectors()) write_vector(os, *entry.tensor);
}

void LstmModel::load(std::istream& is) {
  ParamSet set;
  register_params(set);
  for (const auto& entry : set.matrices()) {
    Matrix m = read_matrix(is);
    RT_CHECK(m.rows() == entry.tensor->rows() &&
                 m.cols() == entry.tensor->cols(),
             "checkpoint shape mismatch at " + entry.name);
    *entry.tensor = std::move(m);
  }
  for (const auto& entry : set.vectors()) {
    Vector v = read_vector(is);
    RT_CHECK(v.size() == entry.tensor->size(),
             "checkpoint shape mismatch at " + entry.name);
    *entry.tensor = std::move(v);
  }
}

}  // namespace rtmobile
