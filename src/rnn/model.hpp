// SpeechModel: the paper's evaluation network — stacked GRU layers plus a
// per-frame linear classifier over phone classes.
//
// The full-size configuration (input 153, two GRU layers of 1024, 39
// classes) has 9,913,344 RNN parameters, matching the paper's "about 9.6M
// overall" GRU. Accuracy experiments use a scaled configuration (see
// DESIGN.md) because training the full model from scratch on a CPU is out
// of budget; performance experiments always use the full size.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rnn/gru_cell.hpp"
#include "rnn/param_set.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace rtmobile {

struct ModelConfig {
  std::size_t input_dim = 39;
  std::size_t hidden_dim = 128;
  std::size_t num_layers = 2;
  std::size_t num_classes = 39;

  /// The paper's full-size GRU: 153 -> 1024 -> 1024 -> 39 (~9.9M params).
  [[nodiscard]] static ModelConfig paper_full_size();

  /// Scaled-down configuration used for the accuracy experiments.
  [[nodiscard]] static ModelConfig scaled(std::size_t hidden = 96);
};

/// Activation trace of one utterance forward pass, consumed by backward().
struct ModelForwardCache {
  // caches[layer][t]
  std::vector<std::vector<GruStepCache>> caches;
  // layer_inputs[layer] = T x dim matrix feeding that layer (layer 0: the
  // utterance features); final entry is the last GRU layer's output.
  std::vector<Matrix> layer_inputs;
};

class SpeechModel {
 public:
  explicit SpeechModel(const ModelConfig& config);

  [[nodiscard]] const ModelConfig& config() const { return config_; }

  /// Seeded weight initialization.
  void init(Rng& rng);

  /// Total learnable parameter count (weights + biases).
  [[nodiscard]] std::size_t param_count() const;

  /// Parameters surviving in the prunable weight matrices (|w| > 0), plus
  /// all bias parameters; the quantity reported as "Para. No." in Table I.
  [[nodiscard]] std::size_t nonzero_param_count() const;

  /// Runs an utterance (T x input_dim) and returns per-frame logits
  /// (T x num_classes). When `cache` is non-null, records activations.
  [[nodiscard]] Matrix forward(const Matrix& features,
                               ModelForwardCache* cache = nullptr) const;

  /// Backpropagates per-frame logit gradients (T x num_classes) through
  /// the whole stack, accumulating into `grads` (same-config model).
  void backward(const ModelForwardCache& cache, const Matrix& dlogits,
                SpeechModel& grads) const;

  /// Sets all parameters to zero (for use as a gradient accumulator).
  void zero();

  /// Registers every tensor ("gru0.w_z", ..., "fc.w", "fc.b").
  void register_params(ParamSet& set);
  /// Const overload for read-only walks (pruning statistics etc.).
  void register_params(ParamSet& set) const;

  /// Names of the prunable weight matrices, in registration order.
  [[nodiscard]] std::vector<std::string> weight_names() const;

  [[nodiscard]] GruParams& layer(std::size_t index);
  [[nodiscard]] const GruParams& layer(std::size_t index) const;
  [[nodiscard]] Matrix& fc_weight() { return fc_w_; }
  [[nodiscard]] const Matrix& fc_weight() const { return fc_w_; }
  [[nodiscard]] Vector& fc_bias() { return fc_b_; }
  [[nodiscard]] const Vector& fc_bias() const { return fc_b_; }

  /// Binary checkpoint I/O (matrices in registration order).
  void save(std::ostream& os) const;
  void load(std::istream& is);
  void save_file(const std::string& path) const;
  void load_file(const std::string& path);

  /// Model-generic cache alias used by the templated trainer.
  using ForwardCache = ModelForwardCache;

 private:
  ModelConfig config_;
  std::vector<GruParams> layers_;
  Matrix fc_w_;  // [num_classes x hidden]
  Vector fc_b_;  // [num_classes]
};

}  // namespace rtmobile
