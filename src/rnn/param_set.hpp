// Named parameter registry.
//
// Training (optimizers), pruning (ADMM / BSP), and serialization all need
// to walk "every learnable tensor of the model" without knowing the model's
// structure. ParamSet is that indirection: an ordered list of named views
// into matrices and vectors owned elsewhere. Gradient objects mirror the
// model's shape, so zipping two ParamSets pairs each parameter with its
// gradient.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace rtmobile {

class ParamSet {
 public:
  /// Registers a matrix parameter. `is_weight` marks tensors eligible for
  /// pruning (biases and norms are not pruned).
  void add(std::string name, Matrix* matrix, bool is_weight = true);
  void add(std::string name, Vector* vector);

  [[nodiscard]] std::size_t entry_count() const {
    return matrices_.size() + vectors_.size();
  }

  /// Total scalar count across all registered tensors.
  [[nodiscard]] std::size_t total_size() const;

  /// Looks up a matrix by name; throws std::invalid_argument if missing.
  [[nodiscard]] Matrix& matrix(const std::string& name) const;

  /// All matrix entries in registration order.
  struct MatrixEntry {
    std::string name;
    Matrix* tensor;
    bool is_weight;
  };
  [[nodiscard]] const std::vector<MatrixEntry>& matrices() const {
    return matrices_;
  }

  struct VectorEntry {
    std::string name;
    Vector* tensor;
  };
  [[nodiscard]] const std::vector<VectorEntry>& vectors() const {
    return vectors_;
  }

  /// Visits every tensor as a flat float span, in registration order.
  void for_each_span(const std::function<void(const std::string&,
                                              std::span<float>)>& visit) const;

  /// Visits (param, grad) span pairs; `grads` must have identical layout
  /// (same names, same order, same shapes) — violated layouts throw.
  static void for_each_pair(
      const ParamSet& params, const ParamSet& grads,
      const std::function<void(const std::string&, std::span<float>,
                               std::span<float>)>& visit);

 private:
  std::vector<MatrixEntry> matrices_;
  std::vector<VectorEntry> vectors_;
};

}  // namespace rtmobile
