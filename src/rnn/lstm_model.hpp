// LstmModel: the LSTM counterpart of SpeechModel.
//
// ESE and C-LSTM — the systems the paper compares against — are LSTM
// frameworks; this model lets their pruning schemes run on their native
// cell, and supports the GRU-vs-LSTM ablation (the paper argues GRU is
// "a more advanced version of RNN than LSTM" with fewer parameters per
// unit of capacity). The interface mirrors SpeechModel exactly so the
// templated trainer and the pruning stack work on either.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rnn/lstm_cell.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace rtmobile {

/// Activation trace of one utterance forward pass, consumed by backward().
struct LstmForwardCache {
  // caches[layer][t]
  std::vector<std::vector<LstmStepCache>> caches;
  // layer_inputs[layer] = T x dim matrix feeding that layer.
  std::vector<Matrix> layer_inputs;
};

class LstmModel {
 public:
  explicit LstmModel(const ModelConfig& config);

  [[nodiscard]] const ModelConfig& config() const { return config_; }

  void init(Rng& rng);
  [[nodiscard]] std::size_t param_count() const;
  [[nodiscard]] std::size_t nonzero_param_count() const;

  /// Runs an utterance (T x input_dim) to per-frame logits (T x classes).
  [[nodiscard]] Matrix forward(const Matrix& features,
                               LstmForwardCache* cache = nullptr) const;

  /// BPTT of per-frame logit gradients into `grads` (same-config model).
  void backward(const LstmForwardCache& cache, const Matrix& dlogits,
                LstmModel& grads) const;

  void zero();
  void register_params(ParamSet& set);
  void register_params(ParamSet& set) const;

  /// Prunable weight matrix names ("lstm0.w_i", ..., "lstm1.u_g").
  [[nodiscard]] std::vector<std::string> weight_names() const;

  [[nodiscard]] LstmParams& layer(std::size_t index);
  [[nodiscard]] const LstmParams& layer(std::size_t index) const;
  [[nodiscard]] Matrix& fc_weight() { return fc_w_; }
  [[nodiscard]] const Matrix& fc_weight() const { return fc_w_; }
  [[nodiscard]] Vector& fc_bias() { return fc_b_; }
  [[nodiscard]] const Vector& fc_bias() const { return fc_b_; }

  void save(std::ostream& os) const;
  void load(std::istream& is);

  /// Model-generic cache alias used by the templated trainer.
  using ForwardCache = LstmForwardCache;

 private:
  ModelConfig config_;
  std::vector<LstmParams> layers_;
  Matrix fc_w_;
  Vector fc_b_;
};

}  // namespace rtmobile
