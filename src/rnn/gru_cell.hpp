// Gated Recurrent Unit cell: forward step and exact BPTT backward step.
//
// Equations (Cho et al. 2014; paper Fig. 1):
//   z_t = sigmoid(W_z x_t + U_z h_{t-1} + b_z)        update gate
//   r_t = sigmoid(W_r x_t + U_r h_{t-1} + b_r)        reset gate
//   h~_t = tanh(W_h x_t + U_h (r_t . h_{t-1}) + b_h)  candidate state
//   h_t = (1 - z_t) . h_{t-1} + z_t . h~_t            output
//
// Weight shapes follow "output rows x input cols": W_* is [hidden x input],
// U_* is [hidden x hidden]. These six matrices are exactly the tensors BSP
// prunes in the paper.
#pragma once

#include <span>

#include "rnn/param_set.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace rtmobile {

/// Learnable parameters of one GRU layer. Also used (same shape) to hold
/// the gradients of those parameters.
struct GruParams {
  Matrix w_z, w_r, w_h;  // input weights   [hidden x input]
  Matrix u_z, u_r, u_h;  // recurrent       [hidden x hidden]
  Vector b_z, b_r, b_h;  // biases          [hidden]

  GruParams() = default;
  GruParams(std::size_t input_dim, std::size_t hidden_dim);

  [[nodiscard]] std::size_t input_dim() const { return w_z.cols(); }
  [[nodiscard]] std::size_t hidden_dim() const { return w_z.rows(); }
  [[nodiscard]] std::size_t param_count() const;

  /// Xavier init for input weights, scaled-orthogonal-ish for recurrent.
  void init(Rng& rng);

  /// Sets every tensor to zero (gradient reset).
  void zero();

  /// Registers all nine tensors under `prefix` (e.g. "gru0.").
  void register_params(const std::string& prefix, ParamSet& set);
};

/// Per-timestep activations captured by the forward pass and consumed by
/// the backward pass.
struct GruStepCache {
  Vector x;        // input at t
  Vector h_prev;   // state entering t
  Vector z, r;     // gate activations
  Vector rh;       // r . h_prev
  Vector h_tilde;  // candidate
  Vector h;        // state leaving t
};

/// h_out = GRU(params; x, h_prev). When `cache` is non-null the step's
/// activations are recorded for backward. h_out may alias h_prev.
void gru_forward_step(const GruParams& params, std::span<const float> x,
                      std::span<const float> h_prev, std::span<float> h_out,
                      GruStepCache* cache);

/// Backpropagates one step. `dh` is dLoss/dh_t (combined from the layer
/// above and from t+1). Accumulates parameter gradients into `grads` and
/// writes dLoss/dx_t and dLoss/dh_{t-1}.
void gru_backward_step(const GruParams& params, const GruStepCache& cache,
                       std::span<const float> dh, GruParams& grads,
                       std::span<float> dx, std::span<float> dh_prev);

}  // namespace rtmobile
