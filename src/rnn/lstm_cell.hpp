// LSTM cell: forward and exact BPTT backward.
//
// Provided as a substrate because the baselines RTMobile compares against
// (ESE, C-LSTM) are LSTM frameworks; having a tested LSTM lets the
// baseline pruning schemes be exercised on their native cell as well as on
// the paper's GRU.
//
// Equations (standard, no peepholes):
//   i_t = sigmoid(W_i x_t + U_i h_{t-1} + b_i)
//   f_t = sigmoid(W_f x_t + U_f h_{t-1} + b_f)
//   o_t = sigmoid(W_o x_t + U_o h_{t-1} + b_o)
//   g_t = tanh(W_g x_t + U_g h_{t-1} + b_g)
//   c_t = f_t . c_{t-1} + i_t . g_t
//   h_t = o_t . tanh(c_t)
#pragma once

#include <span>

#include "rnn/param_set.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace rtmobile {

/// Learnable parameters of one LSTM layer (also used for gradients).
struct LstmParams {
  Matrix w_i, w_f, w_o, w_g;  // input weights   [hidden x input]
  Matrix u_i, u_f, u_o, u_g;  // recurrent       [hidden x hidden]
  Vector b_i, b_f, b_o, b_g;  // biases          [hidden]

  LstmParams() = default;
  LstmParams(std::size_t input_dim, std::size_t hidden_dim);

  [[nodiscard]] std::size_t input_dim() const { return w_i.cols(); }
  [[nodiscard]] std::size_t hidden_dim() const { return w_i.rows(); }
  [[nodiscard]] std::size_t param_count() const;

  /// Xavier / scaled-recurrent init; forget-gate bias starts at +1 (the
  /// usual trick so memory persists early in training).
  void init(Rng& rng);
  void zero();
  void register_params(const std::string& prefix, ParamSet& set);
};

/// Activations recorded by the forward step for backward.
struct LstmStepCache {
  Vector x, h_prev, c_prev;
  Vector i, f, o, g;
  Vector c, tanh_c, h;
};

/// (h_out, c_out) = LSTM(params; x, h_prev, c_prev).
void lstm_forward_step(const LstmParams& params, std::span<const float> x,
                       std::span<const float> h_prev,
                       std::span<const float> c_prev, std::span<float> h_out,
                       std::span<float> c_out, LstmStepCache* cache);

/// Backpropagates one step; dh/dc are gradients flowing into h_t and c_t.
void lstm_backward_step(const LstmParams& params, const LstmStepCache& cache,
                        std::span<const float> dh, std::span<const float> dc,
                        LstmParams& grads, std::span<float> dx,
                        std::span<float> dh_prev, std::span<float> dc_prev);

}  // namespace rtmobile
