#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/check.hpp"
#include "util/report.hpp"

namespace rtmobile::obs {

namespace {

/// Formats a double the way Prometheus expects: full precision, no
/// locale, "+Inf" spelled out by the caller where needed.
[[nodiscard]] std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

[[nodiscard]] std::string format_count(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

/// Renders {a="x",b="y"}; empty labels render as nothing. `extra` lets
/// histogram buckets append their `le` label.
[[nodiscard]] std::string render_labels(
    const Labels& labels, const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  const auto append = [&](const std::string& k, const std::string& v) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  };
  for (const auto& [k, v] : labels) append(k, v);
  if (extra != nullptr) append(extra->first, extra->second);
  out += '}';
  return out;
}

[[nodiscard]] const char* kind_name(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

// ------------------------------------------------------------ Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  RT_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
             "histogram: bucket bounds must be ascending");
  RT_REQUIRE(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                 bounds_.end(),
             "histogram: bucket bounds must be distinct");
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index =
      static_cast<std::size_t>(it - bounds_.begin());  // +Inf at size()
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

HistogramData Histogram::snapshot() const {
  HistogramData data;
  data.bounds = bounds_;
  data.cumulative.resize(buckets_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    data.cumulative[i] = running;
  }
  data.count = running;
  data.sum = sum_.load(std::memory_order_relaxed);
  return data;
}

std::vector<double> default_latency_buckets_us() {
  // 10 us .. 10 s in 1-2.5-5 decades: fine where step latencies live,
  // coarse where only pathologies land.
  std::vector<double> bounds;
  for (double decade = 10.0; decade <= 1e7; decade *= 10.0) {
    bounds.push_back(decade);
    if (decade * 2.5 <= 1e7) bounds.push_back(decade * 2.5);
    if (decade * 5.0 <= 1e7) bounds.push_back(decade * 5.0);
  }
  return bounds;
}

// ------------------------------------------------------------- Registry

MetricsRegistry::Entry* MetricsRegistry::find_entry(std::string_view name,
                                                    const Labels& labels) {
  for (Entry& entry : entries_) {
    if (entry.name == name && entry.labels == labels) return &entry;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string name, std::string help,
                                  Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = find_entry(name, labels); existing != nullptr) {
    RT_REQUIRE(existing->kind == InstrumentKind::kCounter,
               "metrics: instrument re-registered as a different kind");
    return *existing->counter;
  }
  Entry& entry = entries_.emplace_back();
  entry.kind = InstrumentKind::kCounter;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.labels = std::move(labels);
  entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(std::string name, std::string help,
                              Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = find_entry(name, labels); existing != nullptr) {
    RT_REQUIRE(existing->kind == InstrumentKind::kGauge,
               "metrics: instrument re-registered as a different kind");
    return *existing->gauge;
  }
  Entry& entry = entries_.emplace_back();
  entry.kind = InstrumentKind::kGauge;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.labels = std::move(labels);
  entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(std::string name, std::string help,
                                      std::vector<double> upper_bounds,
                                      Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = find_entry(name, labels); existing != nullptr) {
    RT_REQUIRE(existing->kind == InstrumentKind::kHistogram,
               "metrics: instrument re-registered as a different kind");
    return *existing->histogram;
  }
  Entry& entry = entries_.emplace_back();
  entry.kind = InstrumentKind::kHistogram;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.labels = std::move(labels);
  entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return *entry.histogram;
}

void MetricsRegistry::add_collector(std::function<void()> fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(fn));
}

std::size_t MetricsRegistry::instrument_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& collector : collectors_) collector();
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricSample sample;
    sample.name = entry.name;
    sample.help = entry.help;
    sample.labels = entry.labels;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case InstrumentKind::kCounter:
        sample.counter_value = entry.counter->value();
        break;
      case InstrumentKind::kGauge:
        sample.gauge_value = entry.gauge->value();
        break;
      case InstrumentKind::kHistogram:
        sample.histogram = entry.histogram->snapshot();
        break;
    }
    snap.samples.push_back(std::move(sample));
  }
  return snap;
}

// ------------------------------------------------------------- Snapshot

const MetricSample* MetricsSnapshot::find(std::string_view name,
                                          const Labels& labels) const {
  for (const MetricSample& sample : samples) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  std::string last_name;
  for (const MetricSample& sample : samples) {
    if (sample.name != last_name) {
      // One HELP/TYPE header per family; label variants follow it.
      if (!sample.help.empty()) {
        out += "# HELP " + sample.name + ' ' + sample.help + '\n';
      }
      out += "# TYPE " + sample.name + ' ' + kind_name(sample.kind) + '\n';
      last_name = sample.name;
    }
    switch (sample.kind) {
      case InstrumentKind::kCounter:
        out += sample.name + render_labels(sample.labels, nullptr) + ' ' +
               format_count(sample.counter_value) + '\n';
        break;
      case InstrumentKind::kGauge:
        out += sample.name + render_labels(sample.labels, nullptr) + ' ' +
               format_value(sample.gauge_value) + '\n';
        break;
      case InstrumentKind::kHistogram: {
        const HistogramData& h = sample.histogram;
        for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
          const std::pair<std::string, std::string> le{
              "le", i < h.bounds.size() ? format_value(h.bounds[i]) : "+Inf"};
          out += sample.name + "_bucket" +
                 render_labels(sample.labels, &le) + ' ' +
                 format_count(h.cumulative[i]) + '\n';
        }
        out += sample.name + "_sum" + render_labels(sample.labels, nullptr) +
               ' ' + format_value(h.sum) + '\n';
        out += sample.name + "_count" +
               render_labels(sample.labels, nullptr) + ' ' +
               format_count(h.count) + '\n';
        break;
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  // Rendered by hand (not JsonRecord) because histogram samples nest.
  std::string out = "[\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& sample = samples[i];
    out += "  {\"name\": \"" + json_escape(sample.name) + "\", \"kind\": \"";
    out += kind_name(sample.kind);
    out += "\", \"labels\": {";
    for (std::size_t l = 0; l < sample.labels.size(); ++l) {
      if (l > 0) out += ", ";
      out += '"' + json_escape(sample.labels[l].first) + "\": \"" +
             json_escape(sample.labels[l].second) + '"';
    }
    out += "}, ";
    switch (sample.kind) {
      case InstrumentKind::kCounter:
        out += "\"value\": " + format_count(sample.counter_value);
        break;
      case InstrumentKind::kGauge:
        out += "\"value\": " + format_value(sample.gauge_value);
        break;
      case InstrumentKind::kHistogram: {
        const HistogramData& h = sample.histogram;
        out += "\"count\": " + format_count(h.count) +
               ", \"sum\": " + format_value(h.sum) + ", \"buckets\": [";
        for (std::size_t b = 0; b < h.cumulative.size(); ++b) {
          if (b > 0) out += ", ";
          out += "{\"le\": ";
          out += b < h.bounds.size() ? format_value(h.bounds[b]) : "\"+Inf\"";
          out += ", \"n\": " + format_count(h.cumulative[b]) + '}';
        }
        out += ']';
        break;
      }
    }
    out += i + 1 < samples.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

}  // namespace rtmobile::obs
