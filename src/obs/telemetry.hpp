// The one observability object a serving process carries.
//
// Telemetry bundles a MetricsRegistry and a TraceCollector and
// pre-registers the instruments every layer of the stack reports into:
// engine counters that mirror RuntimeStats field-for-field (incremented
// in the same statements, so a /metrics scrape equals StatsAggregator
// totals exactly), scheduler overload counters, per-shard load gauges,
// and the net front's connection counters. Layers receive a Telemetry*
// (null = observability off, zero cost beyond the branch) through their
// existing config structs: EngineConfig::telemetry reaches every
// InferenceEngine and StreamingSession, ShardConfig rides the same
// field, and ServerConfig::telemetry covers the epoll front.
//
// Exposition: render_prometheus()/render_json() merge the registry
// snapshot with synthesized per-stage span samples (and, in JSON, the
// slow-stream exemplar traces), which is exactly what the net server's
// /metrics and /metrics.json endpoints serve.
#pragma once

#include <cstddef>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rtmobile::obs {

/// Engine-side instruments, shared by every engine wired to the same
/// Telemetry (shards sum into one family, which is what makes the
/// scrape equal the cross-shard StatsAggregator totals).
struct EngineMetrics {
  Counter* frames = nullptr;            // == RuntimeStats::frames_processed
  Counter* steps = nullptr;             // == RuntimeStats::steps
  Counter* deadline_misses = nullptr;   // == RuntimeStats::deadline_misses
  Counter* shed_frames = nullptr;       // == RuntimeStats::shed_frames
  Counter* rejected_streams = nullptr;  // == RuntimeStats::rejected_streams
  Counter* fused_steps = nullptr;       // == RuntimeStats::fused_steps
  Counter* fallback_steps = nullptr;    // == RuntimeStats::fallback_steps
  Gauge* busy_us = nullptr;             // ~= RuntimeStats::busy_us
  Gauge* audio_seconds = nullptr;       // ~= RuntimeStats::audio_seconds
  Histogram* step_latency_us = nullptr;
  Histogram* lag_us = nullptr;
  /// Width of each fused compute panel — the batch-occupancy signal
  /// that says how much weight traffic the fused step amortizes.
  Histogram* fused_batch_width = nullptr;
};

/// Net-front instruments (the counters that were previously invisible
/// connection state).
struct NetMetrics {
  Counter* accepted = nullptr;
  Counter* closed = nullptr;
  Counter* protocol_errors = nullptr;
  Counter* slow_consumer_drops = nullptr;
  Counter* ingress_pauses = nullptr;  // pause *episodes*, not bytes
  Counter* bytes_in = nullptr;
  Counter* bytes_out = nullptr;
  Counter* scrapes = nullptr;
  Gauge* connections = nullptr;
};

/// Prefix-result-cache instruments, mirrored in the same statements as
/// the RuntimeStats cache_* fields (so a scrape equals the
/// StatsAggregator's merged totals exactly). Shards share the counter
/// cells; resident_bytes sums shard residency at set time per engine —
/// fleet residency is the StatsAggregator's merged cache_bytes.
struct CacheMetrics {
  Counter* hits = nullptr;           // == RuntimeStats::cache_hits
  Counter* misses = nullptr;         // == RuntimeStats::cache_misses
  Counter* skipped_steps = nullptr;  // == RuntimeStats::cache_skipped_steps
  Counter* evictions = nullptr;      // == RuntimeStats::cache_evictions
  Counter* inserted_bytes = nullptr;  // cumulative bytes memoized
  Gauge* resident_bytes = nullptr;    // current per-engine residency
};

/// Fault-layer instruments: the injected → detected → recovered chain
/// the supervisor and the net front's self-defense timers report into.
struct FaultMetrics {
  Counter* injected = nullptr;          // FaultInjector fires
  Counter* detected = nullptr;          // shards declared unhealthy
  Counter* failovers = nullptr;         // shard failovers executed
  Counter* replayed_streams = nullptr;  // streams migrated intact
  Counter* aborted_streams = nullptr;   // streams given terminal aborts
  Counter* reaped_connections = nullptr;  // idle/stalled conns reaped
};

class Telemetry {
 public:
  /// `span_ring_capacity` sizes each thread's span ring.
  explicit Telemetry(std::size_t span_ring_capacity = 1024);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& registry() { return registry_; }
  TraceCollector& trace() { return trace_; }
  EngineMetrics& engine() { return engine_; }
  NetMetrics& net() { return net_; }
  FaultMetrics& fault() { return fault_; }
  CacheMetrics& cache() { return cache_; }

  /// Registers (idempotently) a per-shard gauge, labeled shard="<s>".
  Gauge& shard_gauge(const std::string& name, const std::string& help,
                     std::size_t shard);

  /// Registry snapshot extended with per-stage span samples
  /// (rt_stage_count/rt_stage_us_total/rt_stage_max_us, labeled by
  /// stage) and the span-ring drop counter.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::string render_prometheus() const;
  /// The metrics snapshot plus slow-stream exemplar span traces.
  [[nodiscard]] std::string render_json() const;

 private:
  MetricsRegistry registry_;
  TraceCollector trace_;
  EngineMetrics engine_;
  NetMetrics net_;
  FaultMetrics fault_;
  CacheMetrics cache_;
};

}  // namespace rtmobile::obs
