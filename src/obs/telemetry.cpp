#include "obs/telemetry.hpp"

#include <cinttypes>
#include <cstdio>

namespace rtmobile::obs {

Telemetry::Telemetry(std::size_t span_ring_capacity)
    : trace_(span_ring_capacity) {
  engine_.frames = &registry_.counter(
      "rt_engine_frames_total", "Feature frames served by engine steps");
  engine_.steps = &registry_.counter("rt_engine_steps_total",
                                     "Engine scheduling rounds executed");
  engine_.deadline_misses = &registry_.counter(
      "rt_engine_deadline_misses_total",
      "Frames served after waiting past their stream's deadline budget");
  engine_.shed_frames = &registry_.counter(
      "rt_engine_shed_frames_total",
      "Frames dropped by the overload policy (shed or reject)");
  engine_.rejected_streams = &registry_.counter(
      "rt_engine_rejected_streams_total",
      "Streams terminated by OverloadPolicy::kReject");
  engine_.busy_us = &registry_.gauge(
      "rt_engine_busy_us", "Wall microseconds spent inside engine steps");
  engine_.audio_seconds = &registry_.gauge(
      "rt_engine_audio_seconds",
      "Audio seconds represented by the frames served");
  engine_.step_latency_us = &registry_.histogram(
      "rt_engine_step_latency_us", "Engine scheduling-round latency",
      default_latency_buckets_us());
  engine_.lag_us = &registry_.histogram(
      "rt_engine_lag_us",
      "Per-round worst head-frame wait across ready streams",
      default_latency_buckets_us());
  engine_.fused_steps = &registry_.counter(
      "rt_fused_steps_total",
      "Scheduling rounds whose batch ran the fused batched-matmat step");
  engine_.fallback_steps = &registry_.counter(
      "rt_fallback_steps_total",
      "Scheduling rounds whose batch fell back to per-stream matvecs");
  engine_.fused_batch_width = &registry_.histogram(
      "rt_fused_batch_width",
      "Streams advanced per fused step (compute panel width)",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});

  net_.accepted = &registry_.counter("rt_net_accepted_total",
                                     "TCP connections accepted");
  net_.closed = &registry_.counter("rt_net_closed_total",
                                   "TCP connections reaped");
  net_.protocol_errors = &registry_.counter(
      "rt_net_protocol_errors_total",
      "Connections failed with a typed protocol error");
  net_.slow_consumer_drops = &registry_.counter(
      "rt_net_slow_consumer_drops_total",
      "Connections dropped at the bounded-egress write-buffer cap");
  net_.ingress_pauses = &registry_.counter(
      "rt_net_ingress_pause_episodes_total",
      "Times a connection paused reads under ingress backpressure");
  net_.bytes_in = &registry_.counter("rt_net_bytes_in_total",
                                     "Wire bytes read from clients");
  net_.bytes_out = &registry_.counter("rt_net_bytes_out_total",
                                      "Wire bytes written to clients");
  net_.scrapes = &registry_.counter("rt_net_scrapes_total",
                                    "HTTP metric scrapes served");
  net_.connections = &registry_.gauge("rt_net_connections",
                                      "Live TCP connections");

  cache_.hits = &registry_.counter(
      "rt_cache_hits_total",
      "Frames served from the prefix result cache (compute skipped)");
  cache_.misses = &registry_.counter(
      "rt_cache_misses_total",
      "Frames that fell through the prefix cache to model compute");
  cache_.skipped_steps = &registry_.counter(
      "rt_cache_skipped_steps_total",
      "Model steps avoided by prefix-cache hits");
  cache_.evictions = &registry_.counter(
      "rt_cache_evictions_total",
      "Prefix-cache entries evicted (byte budget or bucket collision)");
  cache_.inserted_bytes = &registry_.counter(
      "rt_cache_bytes_total",
      "Cumulative bytes memoized into the prefix cache");
  cache_.resident_bytes = &registry_.gauge(
      "rt_cache_resident_bytes",
      "Current prefix-cache residency across engines on this telemetry");

  fault_.injected = &registry_.counter(
      "rt_fault_injected_total", "Faults fired by the FaultInjector");
  fault_.detected = &registry_.counter(
      "rt_fault_detected_total",
      "Shards declared unhealthy by the supervisor");
  fault_.failovers = &registry_.counter(
      "rt_fault_failovers_total", "Shard failovers executed");
  fault_.replayed_streams = &registry_.counter(
      "rt_fault_replayed_streams_total",
      "Live streams migrated intact off a failed shard");
  fault_.aborted_streams = &registry_.counter(
      "rt_fault_aborted_streams_total",
      "Streams given a terminal abort event (could not be replayed)");
  fault_.reaped_connections = &registry_.counter(
      "rt_fault_reaped_connections_total",
      "Connections reaped by the idle/write-stall deadline timers");
}

Gauge& Telemetry::shard_gauge(const std::string& name,
                              const std::string& help, std::size_t shard) {
  return registry_.gauge(name, help,
                         {{"shard", std::to_string(shard)}});
}

MetricsSnapshot Telemetry::snapshot() const {
  MetricsSnapshot snap = registry_.snapshot();
  const std::array<StageStats, kStageCount> stages = trace_.stage_stats();
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const Labels labels{
        {"stage", std::string(stage_name(static_cast<Stage>(s)))}};
    MetricSample count;
    count.name = "rt_stage_spans_total";
    count.help = "Spans recorded per pipeline stage";
    count.labels = labels;
    count.kind = InstrumentKind::kCounter;
    count.counter_value = stages[s].count;
    snap.samples.push_back(std::move(count));
  }
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const Labels labels{
        {"stage", std::string(stage_name(static_cast<Stage>(s)))}};
    MetricSample total;
    total.name = "rt_stage_us_total";
    total.help = "Microseconds spent per pipeline stage";
    total.labels = labels;
    total.kind = InstrumentKind::kGauge;
    total.gauge_value = stages[s].total_us;
    snap.samples.push_back(std::move(total));
  }
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const Labels labels{
        {"stage", std::string(stage_name(static_cast<Stage>(s)))}};
    MetricSample max;
    max.name = "rt_stage_max_us";
    max.help = "Worst single span per pipeline stage";
    max.labels = labels;
    max.kind = InstrumentKind::kGauge;
    max.gauge_value = stages[s].max_us;
    snap.samples.push_back(std::move(max));
  }
  MetricSample dropped;
  dropped.name = "rt_stage_spans_dropped_total";
  dropped.help = "Raw spans overwritten in the per-thread rings";
  dropped.kind = InstrumentKind::kCounter;
  dropped.counter_value = trace_.dropped_spans();
  snap.samples.push_back(std::move(dropped));
  return snap;
}

std::string Telemetry::render_prometheus() const {
  return snapshot().to_prometheus();
}

std::string Telemetry::render_json() const {
  std::string out = "{\n\"metrics\": ";
  out += snapshot().to_json();
  out += ",\n\"slow_stream_exemplars\": [\n";
  const std::vector<TraceCollector::Exemplar> exemplars =
      trace_.exemplars();
  char buf[160];
  for (std::size_t e = 0; e < exemplars.size(); ++e) {
    const TraceCollector::Exemplar& exemplar = exemplars[e];
    std::snprintf(buf, sizeof(buf),
                  "  {\"stream\": %" PRIu64
                  ", \"lag_us\": %.1f, \"captured_at_us\": %.1f, "
                  "\"spans\": [\n",
                  exemplar.stream_id, exemplar.lag_us,
                  exemplar.captured_at_us);
    out += buf;
    for (std::size_t s = 0; s < exemplar.spans.size(); ++s) {
      const SpanRecord& span = exemplar.spans[s];
      const std::string stage(stage_name(span.stage));
      // Batch-level spans (no single stream) render as stream null.
      std::string stream = "null";
      if (span.stream_id != kNoStream) {
        stream = std::to_string(span.stream_id);
      }
      std::snprintf(buf, sizeof(buf),
                    "    {\"stage\": \"%s\", \"stream\": %s, "
                    "\"start_us\": %.1f, \"dur_us\": %.1f}%s\n",
                    stage.c_str(), stream.c_str(), span.start_us,
                    span.duration_us,
                    s + 1 < exemplar.spans.size() ? "," : "");
      out += buf;
    }
    out += e + 1 < exemplars.size() ? "  ]},\n" : "  ]}\n";
  }
  out += "]\n}\n";
  return out;
}

}  // namespace rtmobile::obs
