// Per-stage span tracing for the serving hot path.
//
// RT_SPAN(collector, stage, stream) opens a scoped timer whose record —
// stage, stream attribution, start, duration — lands in the calling
// thread's fixed-capacity ring buffer when the scope closes. Each ring
// belongs to exactly one thread (engine pump, net loop, submitter), so a
// push is one uncontended lock acquire plus a slot write: no allocation,
// no cross-thread contention on the frame path. Rings overwrite their
// oldest record on overflow (and count what they dropped); alongside the
// raw ring every thread keeps exact per-stage accumulators (count /
// total / max), so aggregate stage timings survive even when the raw
// spans have been overwritten.
//
// Slow-stream exemplars: when the engine sees a stream blow its deadline
// budget it calls capture_exemplar(stream_id), which snapshots that
// stream's spans (plus the calling thread's recent batch-level spans)
// out of the rings into a small bounded store — so the full span trace
// of the stream that went slow is still inspectable after the rings have
// moved on. One exemplar per stream is kept (latest wins), at most
// kMaxExemplars streams.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace rtmobile::obs {

/// The serving pipeline's stages, end to end: feature extraction,
/// batch gather, the RNN layer step, incremental decode, event fan-out,
/// and the socket write that ships results to the client.
enum class Stage : std::uint8_t {
  kMfcc = 0,
  kGather,
  kLayerStep,
  kDecode,
  kEventFlush,
  kSocketWrite,
};
inline constexpr std::size_t kStageCount = 6;

[[nodiscard]] std::string_view stage_name(Stage stage);

/// Spans not attributable to one stream (batch-level work) carry this.
inline constexpr std::uint64_t kNoStream = ~0ULL;

struct SpanRecord {
  Stage stage = Stage::kMfcc;
  std::uint64_t stream_id = kNoStream;
  double start_us = 0.0;     // against the collector's epoch
  double duration_us = 0.0;
};

struct StageStats {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

class TraceCollector {
 public:
  /// `ring_capacity` is per thread; must be >= 1.
  explicit TraceCollector(std::size_t ring_capacity = 1024);
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Records one completed span into the calling thread's ring.
  void record(Stage stage, std::uint64_t stream_id, double start_us,
              double duration_us);

  /// Microseconds since the collector's construction (span timestamps).
  [[nodiscard]] double now_us() const;

  /// Exact per-stage accumulators merged across every thread ring.
  [[nodiscard]] std::array<StageStats, kStageCount> stage_stats() const;

  /// Copy of every ring's surviving spans, merged and sorted by start
  /// time (the "recent spans" view; overwritten spans are gone).
  [[nodiscard]] std::vector<SpanRecord> recent_spans() const;

  /// Spans overwritten before they were ever read, across all rings.
  [[nodiscard]] std::uint64_t dropped_spans() const;

  /// Threads that have recorded at least one span.
  [[nodiscard]] std::size_t ring_count() const;

  // ---- slow-stream exemplars ----
  struct Exemplar {
    std::uint64_t stream_id = kNoStream;
    double lag_us = 0.0;         // the lag that triggered the capture
    double captured_at_us = 0.0; // collector clock
    std::vector<SpanRecord> spans;
  };
  static constexpr std::size_t kMaxExemplars = 8;

  /// Snapshots `stream_id`'s spans (and the calling thread's recent
  /// batch-level spans) out of every ring. Latest capture per stream
  /// wins; at most kMaxExemplars streams are retained (oldest evicted).
  void capture_exemplar(std::uint64_t stream_id, double lag_us);
  [[nodiscard]] std::vector<Exemplar> exemplars() const;

 private:
  struct ThreadRing {
    mutable std::mutex mutex;  // writer is one thread; readers snapshot
    std::vector<SpanRecord> slots;
    std::size_t next = 0;       // ring write cursor
    std::uint64_t pushed = 0;   // lifetime spans recorded
    std::array<StageStats, kStageCount> per_stage{};
  };

  ThreadRing& local_ring();

  const std::size_t ring_capacity_;
  const std::uint64_t collector_id_;  // thread-local cache key
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex rings_mutex_;  // guards the ring list, not pushes
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  mutable std::mutex exemplar_mutex_;
  std::deque<Exemplar> exemplars_;
};

/// Scoped span timer. A null collector makes it a no-op, so call sites
/// stay unconditional.
class ScopedSpan {
 public:
  ScopedSpan(TraceCollector* collector, Stage stage,
             std::uint64_t stream_id = kNoStream)
      : collector_(collector), stage_(stage), stream_id_(stream_id),
        start_us_(collector != nullptr ? collector->now_us() : 0.0) {}
  ~ScopedSpan() {
    if (collector_ != nullptr) {
      collector_->record(stage_, stream_id_, start_us_,
                         collector_->now_us() - start_us_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceCollector* collector_;
  Stage stage_;
  std::uint64_t stream_id_;
  double start_us_;
};

}  // namespace rtmobile::obs

#define RT_SPAN_CONCAT_INNER(a, b) a##b
#define RT_SPAN_CONCAT(a, b) RT_SPAN_CONCAT_INNER(a, b)
/// Opens a scoped span on `collector` (TraceCollector*, may be null) for
/// the rest of the enclosing block:
///   RT_SPAN(trace, kLayerStep, ::rtmobile::obs::kNoStream);
#define RT_SPAN(collector, stage, stream_id)                          \
  const ::rtmobile::obs::ScopedSpan RT_SPAN_CONCAT(rt_span_,          \
                                                   __LINE__)(         \
      (collector), ::rtmobile::obs::Stage::stage, (stream_id))
