// Typed metrics for live inspection of a serving process.
//
// A MetricsRegistry holds counters, gauges, and fixed-bucket histograms.
// Instruments are registered once at setup (names, help text, and label
// sets are allocated there and never again), and the hot path touches
// only pre-resolved pointers: Counter::add and Histogram::observe are a
// relaxed atomic add on a cache-line-padded cell, so the 10 ms frame
// path stays allocation-free and lock-free. Snapshots read every cell
// and render the result as Prometheus text exposition format or JSON;
// counter reads are exact (atomic adds never lose increments), which is
// what lets a /metrics scrape be asserted equal to StatsAggregator
// totals after a deterministic workload.
//
// Registration is idempotent: asking for an existing (name, labels) pair
// returns the same instrument (the kind must match), so layers that are
// constructed repeatedly against one registry share cells instead of
// colliding.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rtmobile::obs {

/// Label set fixed at registration ("{shard="0"}"). Order is preserved
/// into the rendered output.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer cell.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cell_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return cell_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::uint64_t> cell_{0};
};

/// Last-write-wins floating-point cell (queue depths, lag, ratios).
class Gauge {
 public:
  void set(double v) { cell_.store(v, std::memory_order_relaxed); }
  void add(double v) { cell_.fetch_add(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return cell_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<double> cell_{0.0};
};

/// Point-in-time histogram contents in Prometheus cumulative-bucket
/// form: cumulative[i] counts observations <= bounds[i]; the final entry
/// (no bound) is the implicit +Inf bucket and always equals count.
struct HistogramData {
  std::vector<double> bounds;                // ascending upper bounds
  std::vector<std::uint64_t> cumulative;     // size bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Fixed-bucket histogram: bounds chosen at registration, observe() is a
/// binary search plus two relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] HistogramData snapshot() const;
  [[nodiscard]] std::span<const double> bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  /// Per-bucket (non-cumulative) counts; [bounds_.size()] is +Inf.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  alignas(64) std::atomic<double> sum_{0.0};
};

/// Exponential-ish default latency buckets in microseconds, 10 us .. 10 s.
[[nodiscard]] std::vector<double> default_latency_buckets_us();

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// One rendered sample: an instrument's identity plus its value at
/// snapshot time.
struct MetricSample {
  std::string name;
  std::string help;
  Labels labels;
  InstrumentKind kind = InstrumentKind::kCounter;
  std::uint64_t counter_value = 0;  // kCounter
  double gauge_value = 0.0;         // kGauge
  HistogramData histogram;          // kHistogram
};

/// Exact point-in-time view of a registry, renderable as Prometheus
/// text exposition format or JSON.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  [[nodiscard]] std::string to_prometheus() const;
  [[nodiscard]] std::string to_json() const;
  /// The counter sample matching (name, labels), or nullptr.
  [[nodiscard]] const MetricSample* find(std::string_view name,
                                         const Labels& labels = {}) const;
};

class MetricsRegistry {
 public:
  /// Registers (or finds) a counter. Throws if the name+labels pair is
  /// already registered as a different kind.
  Counter& counter(std::string name, std::string help, Labels labels = {});
  Gauge& gauge(std::string name, std::string help, Labels labels = {});
  Histogram& histogram(std::string name, std::string help,
                       std::vector<double> upper_bounds, Labels labels = {});

  /// Registers a snapshot-time callback (runs before cells are read) —
  /// how live values (queue depths, lag) get pulled into gauges without
  /// any hot-path publishing beyond what the layer already does.
  void add_collector(std::function<void()> fn);

  /// Runs collectors, then reads every instrument. Counters are exact.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::size_t instrument_count() const;

 private:
  struct Entry {
    InstrumentKind kind;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* find_entry(std::string_view name, const Labels& labels);

  mutable std::mutex mutex_;  // registration + collector list + snapshot
  std::deque<Entry> entries_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace rtmobile::obs
