#include "obs/trace.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmobile::obs {

namespace {

std::atomic<std::uint64_t> g_next_collector_id{1};

/// Thread-local cache mapping collector id -> that thread's ring. Keyed
/// by id (not address) so a collector destroyed and another allocated at
/// the same address can never resolve to a dangling ring.
struct RingCache {
  std::vector<std::pair<std::uint64_t, void*>> entries;
};

thread_local RingCache t_ring_cache;

}  // namespace

std::string_view stage_name(Stage stage) {
  switch (stage) {
    case Stage::kMfcc: return "mfcc";
    case Stage::kGather: return "gather";
    case Stage::kLayerStep: return "layer_step";
    case Stage::kDecode: return "decode";
    case Stage::kEventFlush: return "event_flush";
    case Stage::kSocketWrite: return "socket_write";
  }
  return "?";
}

TraceCollector::TraceCollector(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity),
      collector_id_(g_next_collector_id.fetch_add(1)),
      epoch_(std::chrono::steady_clock::now()) {
  RT_REQUIRE(ring_capacity_ >= 1, "trace: ring capacity must be >= 1");
}

TraceCollector::~TraceCollector() = default;

double TraceCollector::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceCollector::ThreadRing& TraceCollector::local_ring() {
  for (const auto& [id, ring] : t_ring_cache.entries) {
    if (id == collector_id_) return *static_cast<ThreadRing*>(ring);
  }
  // First span from this thread: allocate and register its ring (the
  // one slow path; every later push is the cached pointer).
  auto owned = std::make_unique<ThreadRing>();
  owned->slots.resize(ring_capacity_);
  ThreadRing* ring = owned.get();
  {
    const std::lock_guard<std::mutex> lock(rings_mutex_);
    rings_.push_back(std::move(owned));
  }
  t_ring_cache.entries.emplace_back(collector_id_, ring);
  return *ring;
}

void TraceCollector::record(Stage stage, std::uint64_t stream_id,
                            double start_us, double duration_us) {
  ThreadRing& ring = local_ring();
  const std::lock_guard<std::mutex> lock(ring.mutex);  // uncontended
  ring.slots[ring.next] = SpanRecord{stage, stream_id, start_us,
                                     duration_us};
  ring.next = (ring.next + 1) % ring.slots.size();
  ring.pushed += 1;
  StageStats& stats = ring.per_stage[static_cast<std::size_t>(stage)];
  stats.count += 1;
  stats.total_us += duration_us;
  stats.max_us = std::max(stats.max_us, duration_us);
}

std::array<StageStats, kStageCount> TraceCollector::stage_stats() const {
  std::array<StageStats, kStageCount> merged{};
  const std::lock_guard<std::mutex> lock(rings_mutex_);
  for (const auto& ring : rings_) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    for (std::size_t s = 0; s < kStageCount; ++s) {
      merged[s].count += ring->per_stage[s].count;
      merged[s].total_us += ring->per_stage[s].total_us;
      merged[s].max_us = std::max(merged[s].max_us,
                                  ring->per_stage[s].max_us);
    }
  }
  return merged;
}

std::vector<SpanRecord> TraceCollector::recent_spans() const {
  std::vector<SpanRecord> out;
  {
    const std::lock_guard<std::mutex> lock(rings_mutex_);
    for (const auto& ring : rings_) {
      const std::lock_guard<std::mutex> ring_lock(ring->mutex);
      const std::size_t kept =
          std::min<std::uint64_t>(ring->pushed, ring->slots.size());
      for (std::size_t i = 0; i < kept; ++i) out.push_back(ring->slots[i]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

std::uint64_t TraceCollector::dropped_spans() const {
  std::uint64_t dropped = 0;
  const std::lock_guard<std::mutex> lock(rings_mutex_);
  for (const auto& ring : rings_) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    if (ring->pushed > ring->slots.size()) {
      dropped += ring->pushed - ring->slots.size();
    }
  }
  return dropped;
}

std::size_t TraceCollector::ring_count() const {
  const std::lock_guard<std::mutex> lock(rings_mutex_);
  return rings_.size();
}

void TraceCollector::capture_exemplar(std::uint64_t stream_id,
                                      double lag_us) {
  Exemplar exemplar;
  exemplar.stream_id = stream_id;
  exemplar.lag_us = lag_us;
  exemplar.captured_at_us = now_us();
  {
    const std::lock_guard<std::mutex> lock(rings_mutex_);
    for (const auto& ring : rings_) {
      const std::lock_guard<std::mutex> ring_lock(ring->mutex);
      const std::size_t kept =
          std::min<std::uint64_t>(ring->pushed, ring->slots.size());
      for (std::size_t i = 0; i < kept; ++i) {
        const SpanRecord& span = ring->slots[i];
        // The stream's own spans, plus batch-level spans (gather /
        // layer step) the stream rode through — together the full
        // pipeline picture of why it went slow.
        if (span.stream_id == stream_id || span.stream_id == kNoStream) {
          exemplar.spans.push_back(span);
        }
      }
    }
  }
  std::sort(exemplar.spans.begin(), exemplar.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  const std::lock_guard<std::mutex> lock(exemplar_mutex_);
  for (Exemplar& existing : exemplars_) {
    if (existing.stream_id == stream_id) {  // latest capture wins
      existing = std::move(exemplar);
      return;
    }
  }
  exemplars_.push_back(std::move(exemplar));
  while (exemplars_.size() > kMaxExemplars) exemplars_.pop_front();
}

std::vector<TraceCollector::Exemplar> TraceCollector::exemplars() const {
  const std::lock_guard<std::mutex> lock(exemplar_mutex_);
  return {exemplars_.begin(), exemplars_.end()};
}

}  // namespace rtmobile::obs
