#include "train/optimizer.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace rtmobile {
namespace {

/// Collects (param, grad) span pairs in layout order, validating layouts.
std::vector<std::pair<std::span<float>, std::span<float>>> collect_pairs(
    const ParamSet& params, const ParamSet& grads) {
  std::vector<std::pair<std::span<float>, std::span<float>>> pairs;
  ParamSet::for_each_pair(
      params, grads,
      [&](const std::string&, std::span<float> p, std::span<float> g) {
        pairs.emplace_back(p, g);
      });
  return pairs;
}

void ensure_state(std::vector<std::vector<float>>& state,
                  const std::vector<std::pair<std::span<float>,
                                              std::span<float>>>& pairs) {
  if (state.size() == pairs.size()) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      RT_REQUIRE(state[i].size() == pairs[i].first.size(),
                 "optimizer state shape changed between steps");
    }
    return;
  }
  RT_REQUIRE(state.empty(), "optimizer reused across different models");
  state.resize(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    state[i].assign(pairs[i].first.size(), 0.0F);
  }
}

}  // namespace

Sgd::Sgd(double lr, double momentum) : Optimizer(lr), momentum_(momentum) {
  RT_REQUIRE(lr > 0.0, "learning rate must be positive");
  RT_REQUIRE(momentum >= 0.0 && momentum < 1.0, "momentum must be in [0,1)");
}

void Sgd::step(const ParamSet& params, const ParamSet& grads) {
  const auto pairs = collect_pairs(params, grads);
  ensure_state(velocity_, pairs);
  const float lr = static_cast<float>(lr_);
  const float mu = static_cast<float>(momentum_);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    auto [p, g] = pairs[i];
    auto& vel = velocity_[i];
    for (std::size_t k = 0; k < p.size(); ++k) {
      vel[k] = mu * vel[k] + g[k];
      p[k] -= lr * vel[k];
    }
  }
}

void Sgd::reset() { velocity_.clear(); }

Adam::Adam(double lr, double beta1, double beta2, double epsilon)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  RT_REQUIRE(lr > 0.0, "learning rate must be positive");
  RT_REQUIRE(beta1 >= 0.0 && beta1 < 1.0, "beta1 must be in [0,1)");
  RT_REQUIRE(beta2 >= 0.0 && beta2 < 1.0, "beta2 must be in [0,1)");
  RT_REQUIRE(epsilon > 0.0, "epsilon must be positive");
}

void Adam::step(const ParamSet& params, const ParamSet& grads) {
  const auto pairs = collect_pairs(params, grads);
  ensure_state(m_, pairs);
  ensure_state(v_, pairs);
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  const float lr_hat =
      static_cast<float>(lr_ * std::sqrt(bias2) / bias1);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(epsilon_);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    auto [p, g] = pairs[i];
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t k = 0; k < p.size(); ++k) {
      const float gk = g[k];
      m[k] = b1 * m[k] + (1.0F - b1) * gk;
      v[k] = b2 * v[k] + (1.0F - b2) * gk * gk;
      p[k] -= lr_hat * m[k] / (std::sqrt(v[k]) + eps);
    }
  }
}

void Adam::reset() {
  m_.clear();
  v_.clear();
  step_count_ = 0;
}

double clip_global_norm(const ParamSet& grads, double max_norm) {
  double squared = 0.0;
  grads.for_each_span([&](const std::string&, std::span<float> g) {
    for (const float value : g) {
      squared += static_cast<double>(value) * static_cast<double>(value);
    }
  });
  const double norm = std::sqrt(squared);
  if (max_norm <= 0.0 || norm <= max_norm || norm == 0.0) return norm;
  const float scale = static_cast<float>(max_norm / norm);
  grads.for_each_span([&](const std::string&, std::span<float> g) {
    scale_inplace(g, scale);
  });
  return norm;
}

}  // namespace rtmobile
