// Shared training data types.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace rtmobile {

/// One utterance: per-frame features (T x dim) with a per-frame class label.
struct LabeledSequence {
  Matrix features;                   // T x input_dim
  std::vector<std::uint16_t> labels; // size T, values < num_classes
  std::vector<std::uint16_t> phones; // reference phone sequence (collapsed),
                                     // used for PER scoring; may be empty.
};

}  // namespace rtmobile
