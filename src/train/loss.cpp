#include "train/loss.hpp"

#include <cmath>
#include <vector>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace rtmobile {

double softmax_cross_entropy(const Matrix& logits,
                             std::span<const std::uint16_t> labels,
                             Matrix* dlogits) {
  const std::size_t frames = logits.rows();
  const std::size_t classes = logits.cols();
  RT_REQUIRE(labels.size() == frames, "labels/frames mismatch");
  RT_REQUIRE(frames > 0, "empty utterance");
  if (dlogits != nullptr) {
    RT_REQUIRE(dlogits->rows() == frames && dlogits->cols() == classes,
               "dlogits shape mismatch");
  }

  const float inv_frames = 1.0F / static_cast<float>(frames);
  double total_loss = 0.0;
  std::vector<float> log_probs(classes);
  for (std::size_t t = 0; t < frames; ++t) {
    const std::uint16_t label = labels[t];
    RT_REQUIRE(label < classes, "label out of range");
    log_softmax(logits.row(t), log_probs);
    total_loss -= static_cast<double>(log_probs[label]);
    if (dlogits != nullptr) {
      auto grad_row = dlogits->row(t);
      for (std::size_t c = 0; c < classes; ++c) {
        grad_row[c] = std::exp(log_probs[c]) * inv_frames;
      }
      grad_row[label] -= inv_frames;
    }
  }
  return total_loss / static_cast<double>(frames);
}

double frame_accuracy(const Matrix& logits,
                      std::span<const std::uint16_t> labels) {
  const std::size_t frames = logits.rows();
  RT_REQUIRE(labels.size() == frames, "labels/frames mismatch");
  RT_REQUIRE(frames > 0, "empty utterance");
  std::size_t correct = 0;
  for (std::size_t t = 0; t < frames; ++t) {
    if (argmax(logits.row(t)) == labels[t]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(frames);
}

}  // namespace rtmobile
