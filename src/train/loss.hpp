// Framewise softmax cross-entropy, the training criterion for the
// phone-classification task (PyTorch-Kaldi's GRU recipe also trains
// framewise CE against forced-alignment labels).
#pragma once

#include <cstdint>
#include <span>

#include "tensor/matrix.hpp"

namespace rtmobile {

/// Computes mean-over-frames cross-entropy of `logits` (T x C) against
/// `labels` (size T) and, when `dlogits` is non-null, writes the gradient
/// (softmax(logits) - onehot) / T into it (same shape as logits).
[[nodiscard]] double softmax_cross_entropy(
    const Matrix& logits, std::span<const std::uint16_t> labels,
    Matrix* dlogits = nullptr);

/// Fraction of frames whose argmax logit equals the label.
[[nodiscard]] double frame_accuracy(const Matrix& logits,
                                    std::span<const std::uint16_t> labels);

}  // namespace rtmobile
