// Euclidean projections onto the sparsity constraint sets used by ADMM.
//
// ADMM's Z-update (paper Eq. 4) is the projection of W + U onto the
// constraint set S. Each pruning scheme is defined by its S:
//   - BSP step 1: block-column sparsity (top columns per (stripe, block))
//   - BSP step 2: row sparsity (top rows of the whole matrix)
//   - ESE:        unstructured magnitude sparsity (top-k entries)
//   - BBS:        bank-balanced sparsity (top-k entries per bank)
//   - Wang:       whole-column + whole-row structured sparsity
//   - C-LSTM/E-RNN: block-circulant subspace (handled by
//                   BlockCirculantMatrix::from_dense, a linear projection)
// Because every S here is a union of coordinate subspaces (or a linear
// subspace), the projection keeps the highest-energy structures and zeroes
// the rest — which these helpers implement.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/block_mask.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile {

/// Number of items to keep for a fractional budget: round(total * fraction)
/// clamped to [0, total].
[[nodiscard]] std::size_t keep_count(std::size_t total, double keep_fraction);

/// Indices of the k largest scores (ties broken by lower index), sorted
/// ascending. k may be 0; k > scores.size() is clamped.
[[nodiscard]] std::vector<std::size_t> top_k_indices(
    std::span<const double> scores, std::size_t k);

/// Unstructured magnitude projection: keeps the keep_count largest |w|.
[[nodiscard]] Matrix project_magnitude(const Matrix& w, double keep_fraction);

/// 0/1 mask of the unstructured magnitude projection.
[[nodiscard]] Matrix magnitude_mask(const Matrix& w, double keep_fraction);

/// BSP step-1 structure: for each (stripe, block), scores each column by
/// its L2 energy within the stripe and keeps the top
/// keep_count(block_width, col_keep_fraction) columns. Rows all kept.
[[nodiscard]] BlockMask block_column_mask(const Matrix& w, std::size_t num_r,
                                          std::size_t num_c,
                                          double col_keep_fraction);

/// BSP step-2 structure: scores each row of `w` by L2 energy restricted to
/// the columns `mask` keeps, and prunes rows outside the top
/// keep_count(rows, row_keep_fraction). Updates `mask` in place.
void apply_row_pruning(const Matrix& w, double row_keep_fraction,
                       BlockMask& mask);

/// Projection of `w` onto the subspace selected by `mask` (zero elsewhere).
[[nodiscard]] Matrix project_to_block_mask(const Matrix& w,
                                           const BlockMask& mask);

/// Composite BSP projection used by the ADMM Z-update: derives the
/// block-column structure (and optional row structure) from `w` itself,
/// then zeroes everything outside it.
[[nodiscard]] Matrix project_bsp(const Matrix& w, std::size_t num_r,
                                 std::size_t num_c, double col_keep_fraction,
                                 double row_keep_fraction);

/// Bank-balanced projection (BBS): keeps the top keep_per_bank magnitudes
/// in each bank of each row.
[[nodiscard]] Matrix project_bank_balanced(const Matrix& w,
                                           std::size_t bank_size,
                                           std::size_t keep_per_bank);

/// Whole-column + whole-row structured projection (Wang): keeps the top
/// energy columns then the top energy rows.
[[nodiscard]] Matrix project_row_column(const Matrix& w,
                                        double col_keep_fraction,
                                        double row_keep_fraction);

}  // namespace rtmobile
