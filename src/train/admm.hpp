// ADMM pruning engine (paper Sec. III-C, Algorithm 1).
//
// The constrained problem  min f(W) s.t. W in S  is relaxed to the
// augmented Lagrangian  f(W) + sum_i rho_i/2 ||W_i - Z_i + U_i||_F^2 and
// solved by alternating:
//   W-update (Eq. 3): SGD/Adam on the loss plus the quadratic penalty —
//     the Trainer performs this, with add_penalty_gradients() supplying
//     the penalty term's gradient rho (W - Z + U);
//   Z-update (Eq. 4): Z = project_S(W + U)   — dual_update();
//   U-update (Eq. 5): U += W - Z             — dual_update().
// The projection (definition of S) is pluggable, so the same engine drives
// BSP, unstructured (ESE-style), bank-balanced, and circulant ADMM.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rnn/param_set.hpp"
#include "tensor/matrix.hpp"
#include "train/mask_set.hpp"

namespace rtmobile {

/// Projection onto the constraint set: Matrix -> nearest member of S.
using ProjectionFn = std::function<Matrix(const Matrix&)>;

class AdmmState {
 public:
  /// Attaches a weight matrix to the ADMM loop with its constraint-set
  /// projection and penalty strength rho.
  void attach(const std::string& name, Matrix* weight, ProjectionFn project,
              double rho);

  [[nodiscard]] std::size_t attached_count() const { return entries_.size(); }

  /// Z = project(W), U = 0 for every attached weight. Call once after
  /// attach()ing everything and before the first training round.
  void initialize();

  /// Adds rho * (W - Z + U) to each attached weight's gradient. `grads`
  /// must contain matrices with the same names as the attached weights.
  void add_penalty_gradients(const ParamSet& grads) const;

  /// Performs the Z-update then U-update for all attached weights.
  void dual_update();

  /// max_i ||W_i - Z_i||_F / (||W_i||_F + eps): convergence indicator.
  [[nodiscard]] double max_relative_residual() const;

  /// The auxiliary variable for `name` (test/inspection hook).
  [[nodiscard]] const Matrix& z(const std::string& name) const;
  [[nodiscard]] const Matrix& u(const std::string& name) const;

  /// Hard-pruning masks derived from the support of each Z.
  [[nodiscard]] MaskSet masks() const;

  /// Hard-prunes each attached weight: W = project(W). Returns the masks
  /// implied by the pruned support.
  MaskSet hard_prune();

 private:
  struct Entry {
    std::string name;
    Matrix* weight;
    ProjectionFn project;
    double rho;
    Matrix z;
    Matrix u;
    bool initialized = false;
  };
  [[nodiscard]] const Entry& find(const std::string& name) const;
  std::vector<Entry> entries_;
};

}  // namespace rtmobile
