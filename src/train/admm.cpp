#include "train/admm.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace rtmobile {

void AdmmState::attach(const std::string& name, Matrix* weight,
                       ProjectionFn project, double rho) {
  RT_REQUIRE(weight != nullptr, "attach: null weight for " + name);
  RT_REQUIRE(project != nullptr, "attach: null projection for " + name);
  RT_REQUIRE(rho > 0.0, "attach: rho must be positive for " + name);
  for (const auto& entry : entries_) {
    RT_REQUIRE(entry.name != name, "attach: duplicate weight " + name);
  }
  Entry entry;
  entry.name = name;
  entry.weight = weight;
  entry.project = std::move(project);
  entry.rho = rho;
  entries_.push_back(std::move(entry));
}

void AdmmState::initialize() {
  for (auto& entry : entries_) {
    entry.z = entry.project(*entry.weight);
    RT_ASSERT(entry.z.rows() == entry.weight->rows() &&
                  entry.z.cols() == entry.weight->cols(),
              "projection changed matrix shape for " + entry.name);
    entry.u = Matrix(entry.weight->rows(), entry.weight->cols(), 0.0F);
    entry.initialized = true;
  }
}

void AdmmState::add_penalty_gradients(const ParamSet& grads) const {
  for (const auto& entry : entries_) {
    RT_REQUIRE(entry.initialized, "ADMM not initialized");
    Matrix& grad = grads.matrix(entry.name);
    RT_REQUIRE(grad.rows() == entry.weight->rows() &&
                   grad.cols() == entry.weight->cols(),
               "gradient shape mismatch at " + entry.name);
    const float rho = static_cast<float>(entry.rho);
    const auto w = entry.weight->span();
    const auto z = entry.z.span();
    const auto u = entry.u.span();
    auto g = grad.span();
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] += rho * (w[i] - z[i] + u[i]);
    }
  }
}

void AdmmState::dual_update() {
  for (auto& entry : entries_) {
    RT_REQUIRE(entry.initialized, "ADMM not initialized");
    // Z-update: project W + U onto the constraint set.
    Matrix wu = *entry.weight;
    add_inplace(wu.span(), entry.u.span());
    entry.z = entry.project(wu);
    // U-update: U += W - Z.
    const auto w = entry.weight->span();
    const auto z = entry.z.span();
    auto u = entry.u.span();
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] += w[i] - z[i];
    }
  }
}

double AdmmState::max_relative_residual() const {
  double worst = 0.0;
  for (const auto& entry : entries_) {
    RT_REQUIRE(entry.initialized, "ADMM not initialized");
    double num = 0.0;
    double den = 0.0;
    const auto w = entry.weight->span();
    const auto z = entry.z.span();
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double d = static_cast<double>(w[i]) - static_cast<double>(z[i]);
      num += d * d;
      den += static_cast<double>(w[i]) * static_cast<double>(w[i]);
    }
    worst = std::max(worst, std::sqrt(num) / (std::sqrt(den) + 1e-12));
  }
  return worst;
}

const AdmmState::Entry& AdmmState::find(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return entry;
  }
  RT_REQUIRE(false, "no ADMM entry named " + name);
  throw std::invalid_argument(name);  // unreachable
}

const Matrix& AdmmState::z(const std::string& name) const {
  const Entry& entry = find(name);
  RT_REQUIRE(entry.initialized, "ADMM not initialized");
  return entry.z;
}

const Matrix& AdmmState::u(const std::string& name) const {
  const Entry& entry = find(name);
  RT_REQUIRE(entry.initialized, "ADMM not initialized");
  return entry.u;
}

MaskSet AdmmState::masks() const {
  MaskSet masks;
  for (const auto& entry : entries_) {
    RT_REQUIRE(entry.initialized, "ADMM not initialized");
    Matrix mask(entry.z.rows(), entry.z.cols(), 0.0F);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      mask.span()[i] = entry.z.span()[i] != 0.0F ? 1.0F : 0.0F;
    }
    masks.set(entry.name, std::move(mask));
  }
  return masks;
}

MaskSet AdmmState::hard_prune() {
  MaskSet result;
  for (auto& entry : entries_) {
    RT_REQUIRE(entry.initialized, "ADMM not initialized");
    *entry.weight = entry.project(*entry.weight);
    Matrix mask(entry.weight->rows(), entry.weight->cols(), 0.0F);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      mask.span()[i] = entry.weight->span()[i] != 0.0F ? 1.0F : 0.0F;
    }
    result.set(entry.name, std::move(mask));
  }
  return result;
}

}  // namespace rtmobile
