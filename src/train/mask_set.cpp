#include "train/mask_set.hpp"

#include "util/check.hpp"

namespace rtmobile {
namespace {

void apply_masks(const std::map<std::string, Matrix>& masks,
                 const ParamSet& params) {
  for (const auto& entry : params.matrices()) {
    const auto it = masks.find(entry.name);
    if (it == masks.end()) continue;
    const Matrix& mask = it->second;
    Matrix& w = *entry.tensor;
    RT_REQUIRE(mask.rows() == w.rows() && mask.cols() == w.cols(),
               "mask shape mismatch at " + entry.name);
    for (std::size_t i = 0; i < w.size(); ++i) {
      w.span()[i] *= mask.span()[i];
    }
  }
}

}  // namespace

void MaskSet::set(const std::string& name, Matrix mask) {
  for (const float m : mask.span()) {
    RT_REQUIRE(m == 0.0F || m == 1.0F, "mask entries must be 0 or 1");
  }
  masks_[name] = std::move(mask);
}

void MaskSet::set(const std::string& name, const BlockMask& mask) {
  masks_[name] = mask.to_dense();
}

bool MaskSet::contains(const std::string& name) const {
  return masks_.find(name) != masks_.end();
}

const Matrix& MaskSet::mask(const std::string& name) const {
  const auto it = masks_.find(name);
  RT_REQUIRE(it != masks_.end(), "no mask registered for " + name);
  return it->second;
}

void MaskSet::apply(const ParamSet& params) const {
  apply_masks(masks_, params);
}

void MaskSet::apply_to_grads(const ParamSet& grads) const {
  apply_masks(masks_, grads);
}

std::size_t MaskSet::total_kept() const {
  std::size_t kept = 0;
  for (const auto& [name, mask] : masks_) {
    kept += mask.count_nonzero();
  }
  return kept;
}

std::size_t MaskSet::total_slots() const {
  std::size_t slots = 0;
  for (const auto& [name, mask] : masks_) slots += mask.size();
  return slots;
}

}  // namespace rtmobile
