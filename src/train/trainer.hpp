// Trainer: sequence-level SGD over labeled utterances with optional ADMM
// penalty and optional hard masks (masked retraining).
//
// One "step" = one utterance: forward with activation caching, framewise
// cross-entropy, full BPTT, optional ADMM penalty gradient, optional mask
// on gradients, global-norm clipping, optimizer update, optional mask
// re-application on weights. This is the W-update loop of Algorithm 1.
//
// BasicTrainer is templated over the model type so the same loop drives
// the paper's GRU (SpeechModel) and the baselines' native LSTM
// (LstmModel). A Model must provide: a ForwardCache alias,
// forward(features, ForwardCache*), backward(cache, dlogits, grads),
// zero(), config(), and register_params(ParamSet&).
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "rnn/model.hpp"
#include "train/admm.hpp"
#include "train/loss.hpp"
#include "train/mask_set.hpp"
#include "train/optimizer.hpp"
#include "train/types.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace rtmobile {

struct TrainConfig {
  std::size_t epochs = 5;
  double clip_norm = 5.0;      // <= 0 disables clipping
  double lr_decay = 1.0;       // learning-rate multiplier applied per epoch
  bool verbose = false;        // log per-epoch loss at Info level
};

struct EvalResult {
  double loss = 0.0;
  double frame_accuracy = 0.0;
};

/// Called after every optimizer step. Used by subspace-constrained
/// training (block-circulant methods): re-projecting each step is exactly
/// training in the constrained parametrization, since the constraint sets
/// are linear subspaces.
using PostStepHook = std::function<void()>;

template <typename Model>
class BasicTrainer {
 public:
  /// Binds to the model being trained; allocates a same-shape gradient
  /// accumulator internally.
  explicit BasicTrainer(Model& model) : model_(model), grads_(model.config()) {
    grads_.zero();
    model_.register_params(param_set_);
    grads_.register_params(grad_set_);
  }

  BasicTrainer(const BasicTrainer&) = delete;
  BasicTrainer& operator=(const BasicTrainer&) = delete;

  /// One pass over `data` in shuffled order. Returns mean utterance loss.
  /// `admm` (optional) contributes penalty gradients; `masks` (optional)
  /// zeroes pruned weights/gradients around every step. `clip_norm <= 0`
  /// disables gradient clipping.
  double run_epoch(const std::vector<LabeledSequence>& data, Optimizer& opt,
                   Rng& rng, const AdmmState* admm = nullptr,
                   const MaskSet* masks = nullptr, double clip_norm = 5.0,
                   const PostStepHook& post_step = nullptr) {
    RT_REQUIRE(!data.empty(), "run_epoch: empty dataset");
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);

    double total_loss = 0.0;
    for (const std::size_t index : order) {
      const LabeledSequence& utt = data[index];
      RT_REQUIRE(utt.features.rows() == utt.labels.size(),
                 "utterance features/labels length mismatch");

      typename Model::ForwardCache cache;
      const Matrix logits = model_.forward(utt.features, &cache);
      Matrix dlogits(logits.rows(), logits.cols());
      total_loss += softmax_cross_entropy(
          logits, {utt.labels.data(), utt.labels.size()}, &dlogits);

      grads_.zero();
      model_.backward(cache, dlogits, grads_);
      if (admm != nullptr) admm->add_penalty_gradients(grad_set_);
      if (masks != nullptr) masks->apply_to_grads(grad_set_);
      clip_global_norm(grad_set_, clip_norm);
      opt.step(param_set_, grad_set_);
      if (masks != nullptr) masks->apply(param_set_);
      if (post_step) post_step();
    }
    return total_loss / static_cast<double>(data.size());
  }

  /// Runs config.epochs epochs with per-epoch LR decay. Returns the final
  /// epoch's mean loss.
  double train(const TrainConfig& config,
               const std::vector<LabeledSequence>& data, Optimizer& opt,
               Rng& rng, const AdmmState* admm = nullptr,
               const MaskSet* masks = nullptr,
               const PostStepHook& post_step = nullptr) {
    RT_REQUIRE(config.epochs > 0, "train: epochs must be positive");
    double loss = 0.0;
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
      loss = run_epoch(data, opt, rng, admm, masks, config.clip_norm,
                       post_step);
      if (config.verbose) {
        RT_LOG(Info, "trainer") << "epoch " << (epoch + 1) << '/'
                                << config.epochs << " loss " << loss
                                << " lr " << opt.learning_rate();
      }
      if (config.lr_decay != 1.0) {
        opt.set_learning_rate(opt.learning_rate() * config.lr_decay);
      }
    }
    return loss;
  }

  /// Loss and frame accuracy of `model` on `data` (no weight updates).
  [[nodiscard]] static EvalResult evaluate(
      const Model& model, const std::vector<LabeledSequence>& data) {
    RT_REQUIRE(!data.empty(), "evaluate: empty dataset");
    EvalResult result;
    for (const LabeledSequence& utt : data) {
      const Matrix logits = model.forward(utt.features);
      const std::span<const std::uint16_t> labels{utt.labels.data(),
                                                  utt.labels.size()};
      result.loss += softmax_cross_entropy(logits, labels);
      result.frame_accuracy += frame_accuracy(logits, labels);
    }
    result.loss /= static_cast<double>(data.size());
    result.frame_accuracy /= static_cast<double>(data.size());
    return result;
  }

 private:
  Model& model_;
  Model grads_;
  ParamSet param_set_;
  ParamSet grad_set_;
};

/// The default trainer: the paper's GRU model.
using Trainer = BasicTrainer<SpeechModel>;

}  // namespace rtmobile
