#include "train/projection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sparse/bank_balanced.hpp"
#include "util/check.hpp"

namespace rtmobile {

std::size_t keep_count(std::size_t total, double keep_fraction) {
  RT_REQUIRE(keep_fraction >= 0.0 && keep_fraction <= 1.0,
             "keep fraction must be in [0,1]");
  const auto k = static_cast<std::size_t>(
      std::llround(static_cast<double>(total) * keep_fraction));
  return std::min(k, total);
}

std::vector<std::size_t> top_k_indices(std::span<const double> scores,
                                       std::size_t k) {
  k = std::min(k, scores.size());
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(k);
  std::sort(order.begin(), order.end());
  return order;
}

Matrix project_magnitude(const Matrix& w, double keep_fraction) {
  Matrix mask = magnitude_mask(w, keep_fraction);
  Matrix out = w;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.span()[i] *= mask.span()[i];
  }
  return out;
}

Matrix magnitude_mask(const Matrix& w, double keep_fraction) {
  const std::size_t k = keep_count(w.size(), keep_fraction);
  std::vector<double> scores(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    scores[i] = std::fabs(static_cast<double>(w.span()[i]));
  }
  const auto kept = top_k_indices(scores, k);
  Matrix mask(w.rows(), w.cols(), 0.0F);
  for (const std::size_t i : kept) mask.span()[i] = 1.0F;
  return mask;
}

BlockMask block_column_mask(const Matrix& w, std::size_t num_r,
                            std::size_t num_c, double col_keep_fraction) {
  BlockMask mask(w.rows(), w.cols(), num_r, num_c);
  for (std::size_t s = 0; s < num_r; ++s) {
    const std::size_t r_lo = mask.row_begin(s);
    const std::size_t r_hi = mask.row_end(s);
    for (std::size_t b = 0; b < num_c; ++b) {
      const std::size_t c_lo = mask.col_begin(b);
      const std::size_t c_hi = mask.col_end(b);
      const std::size_t width = c_hi - c_lo;
      std::vector<double> energy(width, 0.0);
      for (std::size_t r = r_lo; r < r_hi; ++r) {
        for (std::size_t c = c_lo; c < c_hi; ++c) {
          const double v = static_cast<double>(w(r, c));
          energy[c - c_lo] += v * v;
        }
      }
      const std::size_t k = keep_count(width, col_keep_fraction);
      const auto kept_local = top_k_indices(energy, k);
      std::vector<std::uint32_t> kept_global;
      kept_global.reserve(kept_local.size());
      for (const std::size_t c : kept_local) {
        kept_global.push_back(static_cast<std::uint32_t>(c_lo + c));
      }
      mask.set_block_cols(s, b, std::move(kept_global));
    }
  }
  return mask;
}

void apply_row_pruning(const Matrix& w, double row_keep_fraction,
                       BlockMask& mask) {
  RT_REQUIRE(w.rows() == mask.rows() && w.cols() == mask.cols(),
             "row pruning: shape mismatch");
  const Matrix dense_mask = mask.to_dense();
  std::vector<double> energy(w.rows(), 0.0);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      const double v =
          static_cast<double>(w(r, c)) * static_cast<double>(dense_mask(r, c));
      energy[r] += v * v;
    }
  }
  const std::size_t k = keep_count(w.rows(), row_keep_fraction);
  const auto kept = top_k_indices(energy, k);
  std::vector<std::uint8_t> keep_flags(w.rows(), 0);
  for (const std::size_t r : kept) keep_flags[r] = 1;
  for (std::size_t r = 0; r < w.rows(); ++r) {
    mask.set_row_kept(r, keep_flags[r] != 0);
  }
}

Matrix project_to_block_mask(const Matrix& w, const BlockMask& mask) {
  Matrix out = w;
  mask.apply(out);
  return out;
}

Matrix project_bsp(const Matrix& w, std::size_t num_r, std::size_t num_c,
                   double col_keep_fraction, double row_keep_fraction) {
  BlockMask mask = block_column_mask(w, num_r, num_c, col_keep_fraction);
  if (row_keep_fraction < 1.0) {
    apply_row_pruning(w, row_keep_fraction, mask);
  }
  return project_to_block_mask(w, mask);
}

Matrix project_bank_balanced(const Matrix& w, std::size_t bank_size,
                             std::size_t keep_per_bank) {
  return BankBalancedMatrix::from_dense(w, bank_size, keep_per_bank)
      .to_dense();
}

Matrix project_row_column(const Matrix& w, double col_keep_fraction,
                          double row_keep_fraction) {
  std::vector<double> col_energy(w.cols(), 0.0);
  std::vector<double> row_energy(w.rows(), 0.0);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      const double v = static_cast<double>(w(r, c));
      col_energy[c] += v * v;
      row_energy[r] += v * v;
    }
  }
  const auto kept_cols =
      top_k_indices(col_energy, keep_count(w.cols(), col_keep_fraction));
  const auto kept_rows =
      top_k_indices(row_energy, keep_count(w.rows(), row_keep_fraction));
  std::vector<std::uint8_t> col_flag(w.cols(), 0);
  std::vector<std::uint8_t> row_flag(w.rows(), 0);
  for (const std::size_t c : kept_cols) col_flag[c] = 1;
  for (const std::size_t r : kept_rows) row_flag[r] = 1;
  Matrix out(w.rows(), w.cols(), 0.0F);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    if (row_flag[r] == 0) continue;
    for (std::size_t c = 0; c < w.cols(); ++c) {
      if (col_flag[c] != 0) out(r, c) = w(r, c);
    }
  }
  return out;
}

}  // namespace rtmobile
