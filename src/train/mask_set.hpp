// MaskSet: named 0/1 masks over a model's prunable weight matrices.
//
// This is the common currency between pruning algorithms (BSP, magnitude,
// bank-balanced, ...) and masked retraining: after every optimizer step the
// trainer re-applies the masks so pruned weights stay exactly zero.
#pragma once

#include <map>
#include <string>

#include "rnn/param_set.hpp"
#include "sparse/block_mask.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile {

class MaskSet {
 public:
  /// Registers a dense 0/1 mask for the weight named `name`.
  void set(const std::string& name, Matrix mask);

  /// Registers the dense rendering of a BlockMask.
  void set(const std::string& name, const BlockMask& mask);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const Matrix& mask(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return masks_.size(); }

  /// Zeroes the masked-out entries of every registered weight in `params`.
  /// Weights without a registered mask are untouched.
  void apply(const ParamSet& params) const;

  /// Same, applied to gradients: masked entries receive zero gradient so
  /// the optimizer's momentum cannot revive them.
  void apply_to_grads(const ParamSet& grads) const;

  /// Total surviving weights across all masks.
  [[nodiscard]] std::size_t total_kept() const;

  /// Total slots across all masks.
  [[nodiscard]] std::size_t total_slots() const;

 private:
  std::map<std::string, Matrix> masks_;
};

}  // namespace rtmobile
