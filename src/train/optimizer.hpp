// First-order optimizers.
//
// The paper notes that ADMM-based pruning "requires the most advanced
// optimizer in stochastic gradient descent (e.g., Adam optimizer)" — which
// C-LSTM's training flow cannot use — so Adam is the default optimizer for
// every ADMM phase here, with SGD+momentum available as a baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rnn/param_set.hpp"

namespace rtmobile {

/// Interface: applies one update step given parameters and gradients with
/// identical layout (see ParamSet::for_each_pair).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// params[i] -= update(grads[i]); allocates state lazily on first call.
  virtual void step(const ParamSet& params, const ParamSet& grads) = 0;

  /// Clears optimizer state (moments); keeps hyperparameters.
  virtual void reset() = 0;

  /// Current learning rate (schedulers mutate this between epochs).
  [[nodiscard]] double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

/// SGD with classical momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.9);
  void step(const ParamSet& params, const ParamSet& grads) override;
  void reset() override;

 private:
  double momentum_;
  std::vector<std::vector<float>> velocity_;  // per entry, lazily sized
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);
  void step(const ParamSet& params, const ParamSet& grads) override;
  void reset() override;

 private:
  double beta1_, beta2_, epsilon_;
  std::int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;  // first moment per entry
  std::vector<std::vector<float>> v_;  // second moment per entry
};

/// Scales gradients so their global L2 norm is at most `max_norm`; returns
/// the pre-clip norm. No-op when max_norm <= 0.
double clip_global_norm(const ParamSet& grads, double max_norm);

}  // namespace rtmobile
