// ESE baseline (Han et al., FPGA'17): non-structured magnitude pruning.
//
// ESE prunes individual weights by magnitude — optionally load-balance-
// aware: rows are divided into PE groups and each group is pruned to the
// same budget so the FPGA's processing elements finish together. The
// pruned model must be stored in CSR/CSC with one index per nonzero,
// which is exactly the overhead RTMobile's Table I and the ablation bench
// hold against it.
#pragma once

#include "baselines/baseline_common.hpp"
#include "tensor/matrix.hpp"
#include "train/mask_set.hpp"
#include "util/rng.hpp"

namespace rtmobile::baselines {

struct EseConfig {
  double keep_fraction = 0.125;  // 8x compression
  bool load_balanced = true;     // per-PE-group budgets
  std::size_t num_pe_groups = 4;
  double rho = 1.5e-2;
  std::size_t admm_rounds = 2;
  std::size_t epochs_per_round = 1;
  std::size_t retrain_epochs = 3;
  double learning_rate = 2e-3;
  double retrain_learning_rate = 1e-3;
};

/// Magnitude projection with ESE's load-balancing: each horizontal PE
/// group keeps its top keep_fraction of entries.
[[nodiscard]] Matrix project_load_balanced_magnitude(
    const Matrix& weights, std::size_t num_pe_groups, double keep_fraction);

class EsePruner {
 public:
  explicit EsePruner(const EseConfig& config);

  /// Full pipeline: ADMM toward the magnitude structure, hard prune,
  /// masked retrain. Modifies the model in place; returns the outcome and
  /// fills `masks` for downstream use.
  BaselineOutcome compress(SpeechModel& model,
                           const std::vector<LabeledSequence>& train_data,
                           Rng& rng, MaskSet* masks_out = nullptr);

  /// Structure-only variant (no training), for performance experiments.
  BaselineOutcome compress_one_shot(SpeechModel& model,
                                    MaskSet* masks_out = nullptr) const;

  [[nodiscard]] const EseConfig& config() const { return config_; }

 private:
  [[nodiscard]] Matrix project(const Matrix& weights) const;
  EseConfig config_;
};

}  // namespace rtmobile::baselines
