#include "baselines/ese.hpp"

#include <algorithm>
#include <cmath>

#include "train/admm.hpp"
#include "train/optimizer.hpp"
#include "train/projection.hpp"
#include "train/trainer.hpp"
#include "util/check.hpp"

namespace rtmobile::baselines {

Matrix project_load_balanced_magnitude(const Matrix& weights,
                                       std::size_t num_pe_groups,
                                       double keep_fraction) {
  RT_REQUIRE(num_pe_groups >= 1 && num_pe_groups <= weights.rows(),
             "PE group count must be in [1, rows]");
  Matrix out(weights.rows(), weights.cols(), 0.0F);
  for (std::size_t g = 0; g < num_pe_groups; ++g) {
    const std::size_t row_lo = g * weights.rows() / num_pe_groups;
    const std::size_t row_hi = (g + 1) * weights.rows() / num_pe_groups;
    const std::size_t slots = (row_hi - row_lo) * weights.cols();
    std::vector<double> scores;
    scores.reserve(slots);
    for (std::size_t r = row_lo; r < row_hi; ++r) {
      for (std::size_t c = 0; c < weights.cols(); ++c) {
        scores.push_back(std::fabs(static_cast<double>(weights(r, c))));
      }
    }
    const auto kept = top_k_indices(scores, keep_count(slots, keep_fraction));
    for (const std::size_t flat : kept) {
      const std::size_t r = row_lo + flat / weights.cols();
      const std::size_t c = flat % weights.cols();
      out(r, c) = weights(r, c);
    }
  }
  return out;
}

EsePruner::EsePruner(const EseConfig& config) : config_(config) {
  RT_REQUIRE(config.keep_fraction > 0.0 && config.keep_fraction <= 1.0,
             "keep fraction must be in (0,1]");
}

Matrix EsePruner::project(const Matrix& weights) const {
  if (config_.load_balanced) {
    return project_load_balanced_magnitude(
        weights, std::min(config_.num_pe_groups, weights.rows()),
        config_.keep_fraction);
  }
  return project_magnitude(weights, config_.keep_fraction);
}

BaselineOutcome EsePruner::compress_one_shot(SpeechModel& model,
                                             MaskSet* masks_out) const {
  const std::vector<std::string> names = compressible_weights(model);
  ParamSet params;
  model.register_params(params);

  BaselineOutcome outcome;
  outcome.method = "ESE";
  outcome.total_weights = total_weight_slots(model, names);
  for (const std::string& name : names) {
    Matrix& weights = params.matrix(name);
    weights = project(weights);
    outcome.stored_params += weights.count_nonzero();
    if (masks_out != nullptr) {
      Matrix mask(weights.rows(), weights.cols(), 0.0F);
      for (std::size_t i = 0; i < mask.size(); ++i) {
        mask.span()[i] = weights.span()[i] != 0.0F ? 1.0F : 0.0F;
      }
      masks_out->set(name, std::move(mask));
    }
  }
  return outcome;
}

BaselineOutcome EsePruner::compress(
    SpeechModel& model, const std::vector<LabeledSequence>& train_data,
    Rng& rng, MaskSet* masks_out) {
  RT_REQUIRE(!train_data.empty(), "ESE compression requires data");
  const std::vector<std::string> names = compressible_weights(model);
  ParamSet params;
  model.register_params(params);

  AdmmState admm;
  for (const std::string& name : names) {
    admm.attach(name, &params.matrix(name),
                [this](const Matrix& w) { return project(w); }, config_.rho);
  }
  admm.initialize();

  Trainer trainer(model);
  Adam optimizer(config_.learning_rate);
  TrainConfig round_config;
  round_config.epochs = config_.epochs_per_round;
  for (std::size_t round = 0; round < config_.admm_rounds; ++round) {
    trainer.train(round_config, train_data, optimizer, rng, &admm);
    admm.dual_update();
  }

  MaskSet masks = admm.hard_prune();
  {
    Trainer retrainer(model);
    Adam retrain_opt(config_.retrain_learning_rate);
    TrainConfig retrain_config;
    retrain_config.epochs = config_.retrain_epochs;
    retrainer.train(retrain_config, train_data, retrain_opt, rng, nullptr,
                    &masks);
  }

  BaselineOutcome outcome;
  outcome.method = "ESE";
  outcome.total_weights = total_weight_slots(model, names);
  for (const std::string& name : names) {
    outcome.stored_params += params.matrix(name).count_nonzero();
  }
  if (masks_out != nullptr) *masks_out = std::move(masks);
  return outcome;
}

}  // namespace rtmobile::baselines
