// Shared scaffolding for the comparison methods of Table I.
//
// Every baseline reimplements another paper's compression scheme on the
// same GRU + synthetic-TIMIT task so the comparison isolates the pruning
// structure, exactly as the paper's Table I does.
#pragma once

#include <string>
#include <vector>

#include "rnn/model.hpp"
#include "train/types.hpp"

namespace rtmobile::baselines {

/// What a compression method reports for Table I.
struct BaselineOutcome {
  std::string method;
  std::size_t total_weights = 0;   // slots across compressed matrices
  std::size_t stored_params = 0;   // surviving nonzeros / defining params

  [[nodiscard]] double compression_rate() const {
    return stored_params == 0
               ? 0.0
               : static_cast<double>(total_weights) /
                     static_cast<double>(stored_params);
  }
  [[nodiscard]] double params_millions() const {
    return static_cast<double>(stored_params) / 1e6;
  }
};

/// The GRU weight names every baseline compresses (the six matrices of
/// each layer; the FC head is left dense, as it is negligible).
[[nodiscard]] std::vector<std::string> compressible_weights(
    const SpeechModel& model);

/// Sums the sizes of the named matrices.
[[nodiscard]] std::size_t total_weight_slots(
    const SpeechModel& model, const std::vector<std::string>& names);

}  // namespace rtmobile::baselines
