// C-LSTM baseline (Wang et al., FPGA'18): block-circulant compression.
//
// Weights are constrained to block-circulant form (k x k circulant tiles),
// giving an exact k-fold parameter reduction and FFT-based inference.
// C-LSTM's training cannot use ADMM (the paper's Sec. III-B criticism),
// so this reimplementation trains with projected SGD: ordinary training
// epochs, each followed by re-projection onto the circulant subspace.
#pragma once

#include "baselines/baseline_common.hpp"
#include "util/rng.hpp"

namespace rtmobile::baselines {

struct ClstmConfig {
  std::size_t block_size = 8;       // k: compression factor per matrix
  std::size_t projected_epochs = 4; // projected-SGD epochs
  std::size_t final_epochs = 2;     // extra epochs after final projection
  double learning_rate = 2e-3;
};

class ClstmCompressor {
 public:
  explicit ClstmCompressor(const ClstmConfig& config);

  /// Projected-SGD training, ending exactly on the circulant subspace.
  BaselineOutcome compress(SpeechModel& model,
                           const std::vector<LabeledSequence>& train_data,
                           Rng& rng);

  /// Structure-only projection (no training).
  BaselineOutcome compress_one_shot(SpeechModel& model) const;

  [[nodiscard]] const ClstmConfig& config() const { return config_; }

 private:
  void project_model(SpeechModel& model) const;
  ClstmConfig config_;
};

}  // namespace rtmobile::baselines
