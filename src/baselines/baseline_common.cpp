#include "baselines/baseline_common.hpp"

namespace rtmobile::baselines {

std::vector<std::string> compressible_weights(const SpeechModel& model) {
  return model.weight_names();
}

std::size_t total_weight_slots(const SpeechModel& model,
                               const std::vector<std::string>& names) {
  ParamSet set;
  model.register_params(set);
  std::size_t total = 0;
  for (const std::string& name : names) {
    total += set.matrix(name).size();
  }
  return total;
}

}  // namespace rtmobile::baselines
