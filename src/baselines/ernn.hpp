// E-RNN baseline (Li et al., HPCA'19): ADMM-trained block-circulant RNNs.
//
// Same block-circulant structure as C-LSTM, but the training uses the
// ADMM framework (the circulant subspace is a linear set, so the
// projection is exact), which is why E-RNN holds accuracy better than
// C-LSTM at the same compression — a relationship Table I reproduces.
#pragma once

#include "baselines/baseline_common.hpp"
#include "util/rng.hpp"

namespace rtmobile::baselines {

struct ErnnConfig {
  std::size_t block_size = 8;
  double rho = 1.5e-2;
  std::size_t admm_rounds = 2;
  std::size_t epochs_per_round = 1;
  std::size_t finetune_epochs = 3;  // projected epochs after hard projection
  double learning_rate = 2e-3;
  double finetune_learning_rate = 1e-3;
};

class ErnnCompressor {
 public:
  explicit ErnnCompressor(const ErnnConfig& config);

  BaselineOutcome compress(SpeechModel& model,
                           const std::vector<LabeledSequence>& train_data,
                           Rng& rng);

  BaselineOutcome compress_one_shot(SpeechModel& model) const;

  [[nodiscard]] const ErnnConfig& config() const { return config_; }

 private:
  ErnnConfig config_;
};

}  // namespace rtmobile::baselines
