// Wang baseline (Wang et al., IEEE Access'19): coarse structured pruning.
//
// Whole rows and whole columns of each weight matrix are removed — the
// coarsest pruning granularity in Table I, with the worst accuracy per
// unit compression; its presence anchors the claim that BSP's block-level
// granularity is what preserves accuracy.
#pragma once

#include "baselines/baseline_common.hpp"
#include "train/mask_set.hpp"
#include "util/rng.hpp"

namespace rtmobile::baselines {

struct WangConfig {
  double col_keep_fraction = 0.5;  // keep half the columns
  double row_keep_fraction = 0.5;  // keep half the rows => 4x overall
  std::size_t retrain_epochs = 4;
  double retrain_learning_rate = 1e-3;
};

class WangPruner {
 public:
  explicit WangPruner(const WangConfig& config);

  /// Train-prune-retrain (the scheme predates ADMM pipelines).
  BaselineOutcome compress(SpeechModel& model,
                           const std::vector<LabeledSequence>& train_data,
                           Rng& rng, MaskSet* masks_out = nullptr);

  BaselineOutcome compress_one_shot(SpeechModel& model,
                                    MaskSet* masks_out = nullptr) const;

  [[nodiscard]] const WangConfig& config() const { return config_; }

 private:
  WangConfig config_;
};

}  // namespace rtmobile::baselines
