#include "baselines/clstm.hpp"

#include "sparse/block_circulant.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"
#include "util/check.hpp"

namespace rtmobile::baselines {
namespace {

std::size_t circulant_param_count(const Matrix& weights,
                                  std::size_t block_size) {
  const std::size_t block_rows =
      (weights.rows() + block_size - 1) / block_size;
  const std::size_t block_cols =
      (weights.cols() + block_size - 1) / block_size;
  return block_rows * block_cols * block_size;
}

}  // namespace

ClstmCompressor::ClstmCompressor(const ClstmConfig& config)
    : config_(config) {
  RT_REQUIRE(is_power_of_two(config.block_size),
             "circulant block size must be a power of two");
}

void ClstmCompressor::project_model(SpeechModel& model) const {
  for (const std::string& name : compressible_weights(model)) {
    ParamSet params;
    model.register_params(params);
    Matrix& weights = params.matrix(name);
    weights =
        BlockCirculantMatrix::from_dense(weights, config_.block_size)
            .to_dense();
  }
}

BaselineOutcome ClstmCompressor::compress_one_shot(SpeechModel& model) const {
  const std::vector<std::string> names = compressible_weights(model);
  project_model(model);

  BaselineOutcome outcome;
  outcome.method = "C-LSTM";
  outcome.total_weights = total_weight_slots(model, names);
  ParamSet params;
  model.register_params(params);
  for (const std::string& name : names) {
    outcome.stored_params +=
        circulant_param_count(params.matrix(name), config_.block_size);
  }
  return outcome;
}

BaselineOutcome ClstmCompressor::compress(
    SpeechModel& model, const std::vector<LabeledSequence>& train_data,
    Rng& rng) {
  RT_REQUIRE(!train_data.empty(), "C-LSTM compression requires data");
  // Start on the circulant subspace, then train *in* it: re-projecting
  // after every optimizer step is equivalent to optimizing the defining
  // vectors directly (the projection is linear), which is how C-LSTM
  // trains. Plain SGD with momentum: C-LSTM's training flow predates /
  // forgoes the Adam-based ADMM pipeline (the limitation the paper
  // calls out).
  project_model(model);
  Trainer trainer(model);
  Sgd optimizer(config_.learning_rate, 0.9);
  TrainConfig train_config;
  train_config.epochs = config_.projected_epochs + config_.final_epochs;
  trainer.train(train_config, train_data, optimizer, rng, nullptr, nullptr,
                [this, &model] { project_model(model); });
  return compress_one_shot(model);
}

}  // namespace rtmobile::baselines
