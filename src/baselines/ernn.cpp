#include "baselines/ernn.hpp"

#include "sparse/block_circulant.hpp"
#include "train/admm.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"
#include "util/check.hpp"

namespace rtmobile::baselines {
namespace {

Matrix project_circulant(const Matrix& weights, std::size_t block_size) {
  return BlockCirculantMatrix::from_dense(weights, block_size).to_dense();
}

std::size_t circulant_param_count(const Matrix& weights,
                                  std::size_t block_size) {
  const std::size_t block_rows =
      (weights.rows() + block_size - 1) / block_size;
  const std::size_t block_cols =
      (weights.cols() + block_size - 1) / block_size;
  return block_rows * block_cols * block_size;
}

}  // namespace

ErnnCompressor::ErnnCompressor(const ErnnConfig& config) : config_(config) {
  RT_REQUIRE(is_power_of_two(config.block_size),
             "circulant block size must be a power of two");
}

BaselineOutcome ErnnCompressor::compress_one_shot(SpeechModel& model) const {
  const std::vector<std::string> names = compressible_weights(model);
  ParamSet params;
  model.register_params(params);

  BaselineOutcome outcome;
  outcome.method = "E-RNN";
  outcome.total_weights = total_weight_slots(model, names);
  for (const std::string& name : names) {
    Matrix& weights = params.matrix(name);
    weights = project_circulant(weights, config_.block_size);
    outcome.stored_params += circulant_param_count(weights,
                                                   config_.block_size);
  }
  return outcome;
}

BaselineOutcome ErnnCompressor::compress(
    SpeechModel& model, const std::vector<LabeledSequence>& train_data,
    Rng& rng) {
  RT_REQUIRE(!train_data.empty(), "E-RNN compression requires data");
  const std::vector<std::string> names = compressible_weights(model);
  ParamSet params;
  model.register_params(params);

  AdmmState admm;
  const std::size_t block = config_.block_size;
  for (const std::string& name : names) {
    admm.attach(name, &params.matrix(name),
                [block](const Matrix& w) {
                  return project_circulant(w, block);
                },
                config_.rho);
  }
  admm.initialize();

  Trainer trainer(model);
  Adam optimizer(config_.learning_rate);
  TrainConfig round_config;
  round_config.epochs = config_.epochs_per_round;
  for (std::size_t round = 0; round < config_.admm_rounds; ++round) {
    trainer.train(round_config, train_data, optimizer, rng, &admm);
    admm.dual_update();
  }

  // Hard projection onto the circulant subspace, then fine-tune *in* the
  // subspace (re-project after every step; the constraint is linear, so
  // this is exact subspace training).
  const auto project_all = [&params, &names, block] {
    for (const std::string& name : names) {
      Matrix& weights = params.matrix(name);
      weights = project_circulant(weights, block);
    }
  };
  project_all();
  if (config_.finetune_epochs > 0) {
    Adam finetune_opt(config_.finetune_learning_rate);
    TrainConfig finetune_config;
    finetune_config.epochs = config_.finetune_epochs;
    trainer.train(finetune_config, train_data, finetune_opt, rng, nullptr,
                  nullptr, project_all);
  }

  BaselineOutcome outcome;
  outcome.method = "E-RNN";
  outcome.total_weights = total_weight_slots(model, names);
  for (const std::string& name : names) {
    outcome.stored_params +=
        circulant_param_count(params.matrix(name), block);
  }
  return outcome;
}

}  // namespace rtmobile::baselines
