#include "baselines/wang.hpp"

#include "train/optimizer.hpp"
#include "train/projection.hpp"
#include "train/trainer.hpp"
#include "util/check.hpp"

namespace rtmobile::baselines {

WangPruner::WangPruner(const WangConfig& config) : config_(config) {
  RT_REQUIRE(config.col_keep_fraction > 0.0 &&
                 config.col_keep_fraction <= 1.0,
             "column keep fraction must be in (0,1]");
  RT_REQUIRE(config.row_keep_fraction > 0.0 &&
                 config.row_keep_fraction <= 1.0,
             "row keep fraction must be in (0,1]");
}

BaselineOutcome WangPruner::compress_one_shot(SpeechModel& model,
                                              MaskSet* masks_out) const {
  const std::vector<std::string> names = compressible_weights(model);
  ParamSet params;
  model.register_params(params);

  BaselineOutcome outcome;
  outcome.method = "Wang";
  outcome.total_weights = total_weight_slots(model, names);
  for (const std::string& name : names) {
    Matrix& weights = params.matrix(name);
    weights = project_row_column(weights, config_.col_keep_fraction,
                                 config_.row_keep_fraction);
    outcome.stored_params += weights.count_nonzero();
    if (masks_out != nullptr) {
      Matrix mask(weights.rows(), weights.cols(), 0.0F);
      for (std::size_t i = 0; i < mask.size(); ++i) {
        mask.span()[i] = weights.span()[i] != 0.0F ? 1.0F : 0.0F;
      }
      masks_out->set(name, std::move(mask));
    }
  }
  return outcome;
}

BaselineOutcome WangPruner::compress(
    SpeechModel& model, const std::vector<LabeledSequence>& train_data,
    Rng& rng, MaskSet* masks_out) {
  RT_REQUIRE(!train_data.empty(), "Wang compression requires data");
  MaskSet masks;
  BaselineOutcome outcome = compress_one_shot(model, &masks);

  Trainer trainer(model);
  Adam optimizer(config_.retrain_learning_rate);
  TrainConfig retrain_config;
  retrain_config.epochs = config_.retrain_epochs;
  trainer.train(retrain_config, train_data, optimizer, rng, nullptr, &masks);

  // Recount after retraining (masked entries stay zero).
  const std::vector<std::string> names = compressible_weights(model);
  ParamSet params;
  model.register_params(params);
  outcome.stored_params = 0;
  for (const std::string& name : names) {
    outcome.stored_params += params.matrix(name).count_nonzero();
  }
  if (masks_out != nullptr) *masks_out = std::move(masks);
  return outcome;
}

}  // namespace rtmobile::baselines
