#include "baselines/bbs.hpp"

#include "train/admm.hpp"
#include "train/optimizer.hpp"
#include "train/projection.hpp"
#include "train/trainer.hpp"
#include "util/check.hpp"

namespace rtmobile::baselines {
namespace {

/// Banks must divide the row width; pad-free fallback shrinks the bank
/// size to the largest divisor of cols not exceeding the configured size.
std::size_t feasible_bank_size(std::size_t cols, std::size_t requested) {
  std::size_t bank = std::min(requested, cols);
  while (bank > 1 && cols % bank != 0) --bank;
  return bank;
}

}  // namespace

BbsPruner::BbsPruner(const BbsConfig& config) : config_(config) {
  RT_REQUIRE(config.bank_size >= 1, "bank size must be positive");
  RT_REQUIRE(config.keep_per_bank >= 1 &&
                 config.keep_per_bank <= config.bank_size,
             "keep_per_bank must be in [1, bank_size]");
}

BaselineOutcome BbsPruner::compress_one_shot(SpeechModel& model,
                                             MaskSet* masks_out) const {
  const std::vector<std::string> names = compressible_weights(model);
  ParamSet params;
  model.register_params(params);

  BaselineOutcome outcome;
  outcome.method = "BBS";
  outcome.total_weights = total_weight_slots(model, names);
  for (const std::string& name : names) {
    Matrix& weights = params.matrix(name);
    const std::size_t bank = feasible_bank_size(weights.cols(),
                                                config_.bank_size);
    const std::size_t keep = std::min(config_.keep_per_bank, bank);
    weights = project_bank_balanced(weights, bank, keep);
    outcome.stored_params += weights.count_nonzero();
    if (masks_out != nullptr) {
      Matrix mask(weights.rows(), weights.cols(), 0.0F);
      for (std::size_t i = 0; i < mask.size(); ++i) {
        mask.span()[i] = weights.span()[i] != 0.0F ? 1.0F : 0.0F;
      }
      masks_out->set(name, std::move(mask));
    }
  }
  return outcome;
}

BaselineOutcome BbsPruner::compress(
    SpeechModel& model, const std::vector<LabeledSequence>& train_data,
    Rng& rng, MaskSet* masks_out) {
  RT_REQUIRE(!train_data.empty(), "BBS compression requires data");
  const std::vector<std::string> names = compressible_weights(model);
  ParamSet params;
  model.register_params(params);

  AdmmState admm;
  for (const std::string& name : names) {
    Matrix& weights = params.matrix(name);
    const std::size_t bank = feasible_bank_size(weights.cols(),
                                                config_.bank_size);
    const std::size_t keep = std::min(config_.keep_per_bank, bank);
    admm.attach(name, &weights,
                [bank, keep](const Matrix& w) {
                  return project_bank_balanced(w, bank, keep);
                },
                config_.rho);
  }
  admm.initialize();

  Trainer trainer(model);
  Adam optimizer(config_.learning_rate);
  TrainConfig round_config;
  round_config.epochs = config_.epochs_per_round;
  for (std::size_t round = 0; round < config_.admm_rounds; ++round) {
    trainer.train(round_config, train_data, optimizer, rng, &admm);
    admm.dual_update();
  }

  MaskSet masks = admm.hard_prune();
  {
    Trainer retrainer(model);
    Adam retrain_opt(config_.retrain_learning_rate);
    TrainConfig retrain_config;
    retrain_config.epochs = config_.retrain_epochs;
    retrainer.train(retrain_config, train_data, retrain_opt, rng, nullptr,
                    &masks);
  }

  BaselineOutcome outcome;
  outcome.method = "BBS";
  outcome.total_weights = total_weight_slots(model, names);
  for (const std::string& name : names) {
    outcome.stored_params += params.matrix(name).count_nonzero();
  }
  if (masks_out != nullptr) *masks_out = std::move(masks);
  return outcome;
}

}  // namespace rtmobile::baselines
