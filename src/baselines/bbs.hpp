// BBS baseline (Cao et al., FPGA'19): bank-balanced sparsity.
//
// Each weight row is split into equal banks and every bank keeps the same
// number of largest-magnitude entries. Load balance is perfect by
// construction; accuracy sits between unstructured (ESE) and coarse
// structured (Wang) pruning — the ordering Table I reproduces.
#pragma once

#include "baselines/baseline_common.hpp"
#include "train/mask_set.hpp"
#include "util/rng.hpp"

namespace rtmobile::baselines {

struct BbsConfig {
  std::size_t bank_size = 16;
  std::size_t keep_per_bank = 2;  // bank_size/keep = compression rate
  double rho = 1.5e-2;
  std::size_t admm_rounds = 2;
  std::size_t epochs_per_round = 1;
  std::size_t retrain_epochs = 3;
  double learning_rate = 2e-3;
  double retrain_learning_rate = 1e-3;
};

class BbsPruner {
 public:
  explicit BbsPruner(const BbsConfig& config);

  BaselineOutcome compress(SpeechModel& model,
                           const std::vector<LabeledSequence>& train_data,
                           Rng& rng, MaskSet* masks_out = nullptr);

  BaselineOutcome compress_one_shot(SpeechModel& model,
                                    MaskSet* masks_out = nullptr) const;

  [[nodiscard]] const BbsConfig& config() const { return config_; }

 private:
  BbsConfig config_;
};

}  // namespace rtmobile::baselines
