// Wall-clock timing helpers for the measured (host) benchmark path.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>

namespace rtmobile {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Microseconds since construction or the last reset().
  [[nodiscard]] double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` `iters` times and returns the mean per-iteration time in us.
double time_mean_us(const std::function<void()>& fn, std::size_t iters);

/// Runs `repeats` batches of `iters` calls and returns the best (minimum)
/// mean per-iteration time — the standard noise-resistant protocol.
double time_best_of_us(const std::function<void()>& fn, std::size_t iters,
                       std::size_t repeats);

}  // namespace rtmobile
