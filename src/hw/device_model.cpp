#include "hw/device_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rtmobile {

DeviceModel::DeviceModel(std::string name, double dense_gops,
                         double sparsity_exponent, double max_cr,
                         double overhead_us, double power_watts)
    : name_(std::move(name)),
      dense_gops_(dense_gops),
      sparsity_exponent_(sparsity_exponent),
      max_cr_(max_cr),
      overhead_us_(overhead_us),
      power_watts_(power_watts) {
  RT_REQUIRE(dense_gops > 0.0, "dense throughput must be positive");
  RT_REQUIRE(sparsity_exponent > 0.0 && sparsity_exponent <= 1.0,
             "sparsity exponent must be in (0, 1]");
  RT_REQUIRE(max_cr > 1.0, "max compression anchor must exceed 1x");
  RT_REQUIRE(overhead_us >= 0.0, "overhead must be non-negative");
  RT_REQUIRE(power_watts > 0.0, "power must be positive");
}

double DeviceModel::effective_gops(double compression_rate) const {
  RT_REQUIRE(compression_rate >= 1.0, "compression rate must be >= 1");
  // Sublinear speedup law: throughput degrades as CR^(q-1); clamped at
  // the calibration bound to avoid extrapolating beyond measured data.
  const double cr = std::min(compression_rate, max_cr_);
  return dense_gops_ * std::pow(cr, sparsity_exponent_ - 1.0);
}

double DeviceModel::time_us(const Workload& workload) const {
  RT_REQUIRE(workload.gop >= 0.0, "workload ops must be non-negative");
  // gop / (gop/s) = seconds; *1e6 = microseconds. gop is already in giga,
  // effective_gops in giga/s, so the giga factors cancel.
  return overhead_us_ +
         workload.gop / effective_gops(workload.compression_rate) * 1e6;
}

double DeviceModel::energy_per_frame_j(const Workload& workload) const {
  return power_watts_ * time_us(workload) * 1e-6;
}

double DeviceModel::frames_per_joule(const Workload& workload) const {
  return 1.0 / energy_per_frame_j(workload);
}

DeviceModel DeviceModel::adreno640_gpu() {
  // Calibration (q = 0.95) against Table II's endpoints, using the
  // paper's own (GOP, time) pairs: t = a + gop*1e6/(G*CR^(q-1)) with
  // t(1x; 0.58 GOP) = 3590.12 us and t(301x; 0.0020 GOP) = 79.13 us
  //   =>  a = 63.0 us, G = 164.4 GOP/s.
  // Every interior row is then predicted within 10% (see test_hw.cpp),
  // and the 245x row crosses ESE's 82.7 us as the paper claims.
  return DeviceModel("Adreno 640 GPU (fp16)", /*dense_gops=*/164.44,
                     /*sparsity_exponent=*/0.95, /*max_cr=*/301.0,
                     /*overhead_us=*/63.04, /*power_watts=*/1.078);
}

DeviceModel DeviceModel::kryo485_cpu() {
  // Calibration (q = 0.90): t(1x; 0.58 GOP) = 7130 us and
  // t(301x; 0.0020 GOP) = 145.93 us  =>  a = 103.0 us, G = 82.5 GOP/s.
  // Interior rows predict within 20% (the CPU column of Table II is
  // itself noisy: time barely moves from 80x to 103x).
  return DeviceModel("Kryo 485 CPU (fp32)", /*dense_gops=*/82.54,
                     /*sparsity_exponent=*/0.90, /*max_cr=*/301.0,
                     /*overhead_us=*/103.03, /*power_watts=*/1.902);
}

}  // namespace rtmobile
