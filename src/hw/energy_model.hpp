// Energy-efficiency accounting, normalized exactly as the paper does:
// efficiency = inference frames per unit energy, reported relative to the
// ESE FPGA deployment (Table II's "normalized with ESE" columns).
#pragma once

#include "hw/device_model.hpp"

namespace rtmobile {

class EnergyModel {
 public:
  explicit EnergyModel(EseFpgaReference ese = EseFpgaReference{})
      : ese_(ese) {}

  /// frames/J of a device on a workload, divided by ESE's frames/J.
  [[nodiscard]] double normalized_efficiency(const DeviceModel& device,
                                             const Workload& workload) const;

  /// Same, from a directly-supplied time and power (for measured paths).
  [[nodiscard]] double normalized_efficiency(double time_per_frame_us,
                                             double power_watts) const;

  [[nodiscard]] const EseFpgaReference& ese() const { return ese_; }

 private:
  EseFpgaReference ese_;
};

}  // namespace rtmobile
