#include "hw/thread_pool.hpp"

#include <algorithm>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/check.hpp"

namespace rtmobile {
namespace {

// Spin budget before a worker sleeps / the caller blocks. Tuned for
// sub-millisecond kernels: ~10-30 us of spinning on current hardware.
constexpr int kSpinIterations = 1 << 14;

inline void spin_pause(int iteration) {
  // Yield occasionally so spinning does not starve co-scheduled threads.
  if ((iteration & 1023) == 1023) std::this_thread::yield();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, std::optional<CoreRange> affinity) {
  RT_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  RT_REQUIRE(!affinity || affinity->count >= 1,
             "thread pool affinity range must be non-empty");
  // The caller participates in every job, so spawn threads-1 workers to
  // keep the total concurrency at `threads`.
  const std::size_t workers = threads - 1;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i, affinity] {
      if (affinity) {
        // Core begin is reserved for the caller; workers take the rest
        // round-robin so a range narrower than the pool still covers it.
        const std::size_t slot = affinity->count > 1
                                     ? 1 + i % (affinity->count - 1)
                                     : 0;
        pin_current_thread(affinity->begin + slot);
      }
      worker_loop();
    });
  }
  configured_threads_ = threads;
}

ThreadPool::~ThreadPool() {
  shutting_down_.store(true, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    work_ready_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::drain_current_job() {
  const std::size_t count = task_count_.load(std::memory_order_acquire);
  const auto* tasks = tasks_;
  if (tasks == nullptr) return;
  for (;;) {
    const std::size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count) break;
    std::exception_ptr caught;
    try {
      (*tasks)[index]();
    } catch (...) {
      caught = std::current_exception();
    }
    if (caught) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = caught;
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task of the job: wake the caller if it gave up spinning.
      if (caller_sleeping_.load(std::memory_order_acquire)) {
        const std::lock_guard<std::mutex> lock(mutex_);
        job_done_.notify_all();
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = generation_.load(std::memory_order_acquire);
  for (;;) {
    // Hot path: spin on the generation counter.
    bool have_work = false;
    for (int spin = 0; spin < kSpinIterations; ++spin) {
      if (shutting_down_.load(std::memory_order_acquire)) return;
      if (generation_.load(std::memory_order_acquire) != seen) {
        have_work = true;
        break;
      }
      spin_pause(spin);
    }
    if (!have_work) {
      std::unique_lock<std::mutex> lock(mutex_);
      sleepers_.fetch_add(1, std::memory_order_acq_rel);
      work_ready_.wait(lock, [this, seen] {
        return shutting_down_.load(std::memory_order_acquire) ||
               generation_.load(std::memory_order_acquire) != seen;
      });
      sleepers_.fetch_sub(1, std::memory_order_acq_rel);
      if (shutting_down_.load(std::memory_order_acquire)) return;
    }
    seen = generation_.load(std::memory_order_acquire);
    drain_current_job();
  }
}

void ThreadPool::run_all(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  RT_ASSERT(remaining_.load(std::memory_order_acquire) == 0,
            "nested run_all is not supported");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    error_ = nullptr;
  }
  tasks_ = &tasks;
  task_count_.store(tasks.size(), std::memory_order_relaxed);
  next_.store(0, std::memory_order_relaxed);
  remaining_.store(tasks.size(), std::memory_order_relaxed);
  caller_sleeping_.store(false, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    const std::lock_guard<std::mutex> lock(mutex_);
    work_ready_.notify_all();
  }

  // The caller is a worker too — on a 1-thread pool it does all the work.
  drain_current_job();

  // Wait for stragglers: spin briefly, then block.
  for (int spin = 0; spin < kSpinIterations; ++spin) {
    if (remaining_.load(std::memory_order_acquire) == 0) break;
    spin_pause(spin);
  }
  if (remaining_.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    caller_sleeping_.store(true, std::memory_order_release);
    job_done_.wait(lock, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
    caller_sleeping_.store(false, std::memory_order_release);
  }
  tasks_ = nullptr;

  std::exception_ptr to_throw;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    to_throw = error_;
    error_ = nullptr;
  }
  if (to_throw) std::rethrow_exception(to_throw);
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for_indexed(
      n, [&fn](std::size_t, std::size_t begin, std::size_t end) {
        fn(begin, end);
      });
}

void ThreadPool::parallel_for_indexed(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = std::min(thread_count(), n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * n / workers;
    const std::size_t end = (w + 1) * n / workers;
    tasks.emplace_back([&fn, w, begin, end] { fn(w, begin, end); });
  }
  run_all(tasks);
}

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 4 : hw, 1, 16);
}

bool ThreadPool::pin_current_thread(std::size_t core) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (core >= CPU_SETSIZE) return false;
  CPU_SET(core, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace rtmobile
