// The numbers published in the paper's Tables I and II, as data.
//
// The benchmark harness prints each reproduced value next to the paper's
// value so EXPERIMENTS.md can record paper-vs-measured for every row, and
// tests assert that the calibrated device models stay within tolerance of
// the published measurements.
#pragma once

#include <optional>
#include <span>
#include <string>

namespace rtmobile::paper {

/// One BSP row of Table I.
struct Table1BspRow {
  double compression_rate;  // "Overall Compress. Rate"
  double col_rate;          // "Column Compress. Rate" (step-1 target)
  double row_rate;          // "Row Compress. Rate" (step-2 target)
  double params_millions;   // "Para. No."
  double per_baseline;      // dense PER %
  double per_pruned;        // pruned PER %
};

/// One baseline row of Table I (other methods).
struct Table1BaselineRow {
  const char* method;
  std::optional<double> per_baseline;  // % (Wang reports only degradation)
  std::optional<double> per_pruned;    // %
  double per_degradation;              // percentage points
  double params_millions;
  double compression_rate;
};

/// One row of Table II.
struct Table2Row {
  double compression_rate;
  double gop;
  double gpu_time_us;
  double gpu_gops;
  double gpu_energy_eff;  // normalized with ESE
  double cpu_time_us;
  double cpu_gops;
  double cpu_energy_eff;  // normalized with ESE
};

/// BSP rows of Table I (compression 1x .. 301x).
[[nodiscard]] std::span<const Table1BspRow> table1_bsp();

/// Baseline rows of Table I (ESE, C-LSTM, BBS, Wang, E-RNN).
[[nodiscard]] std::span<const Table1BaselineRow> table1_baselines();

/// All rows of Table II.
[[nodiscard]] std::span<const Table2Row> table2();

/// The paper's dense GRU baseline PER on TIMIT (%).
inline constexpr double kBaselinePer = 18.80;

/// ESE FPGA reference: inference time and board power.
inline constexpr double kEseTimeUs = 82.7;
inline constexpr double kEsePowerW = 41.0;

/// Full-size GRU dense workload: 0.58 GOP per inference frame.
inline constexpr double kDenseGop = 0.58;

}  // namespace rtmobile::paper
