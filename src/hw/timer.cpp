#include "hw/timer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmobile {

double time_mean_us(const std::function<void()>& fn, std::size_t iters) {
  RT_REQUIRE(iters > 0, "iters must be positive");
  const WallTimer timer;
  for (std::size_t i = 0; i < iters; ++i) fn();
  return timer.elapsed_us() / static_cast<double>(iters);
}

double time_best_of_us(const std::function<void()>& fn, std::size_t iters,
                       std::size_t repeats) {
  RT_REQUIRE(repeats > 0, "repeats must be positive");
  double best = time_mean_us(fn, iters);
  for (std::size_t r = 1; r < repeats; ++r) {
    best = std::min(best, time_mean_us(fn, iters));
  }
  return best;
}

}  // namespace rtmobile
