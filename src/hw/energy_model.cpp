#include "hw/energy_model.hpp"

#include "util/check.hpp"

namespace rtmobile {

double EnergyModel::normalized_efficiency(const DeviceModel& device,
                                          const Workload& workload) const {
  return device.frames_per_joule(workload) / ese_.frames_per_joule();
}

double EnergyModel::normalized_efficiency(double time_per_frame_us,
                                          double power_watts) const {
  RT_REQUIRE(time_per_frame_us > 0.0, "time must be positive");
  RT_REQUIRE(power_watts > 0.0, "power must be positive");
  const double frames_per_joule =
      1.0 / (power_watts * time_per_frame_us * 1e-6);
  return frames_per_joule / ese_.frames_per_joule();
}

}  // namespace rtmobile
