// Fixed-size thread pool with a static-partition parallel_for.
//
// This is the execution substrate for the "mobile CPU" measured path. RNN
// inference dispatches hundreds of sub-millisecond matvecs per frame, so
// dispatch latency dominates unless workers stay hot: workers spin briefly
// on an atomic generation counter before sleeping on a condition variable,
// tasks are claimed with an atomic cursor, and the calling thread helps
// execute — bringing dispatch cost from ~100 us (pure condvar) to ~1 us
// when the pool is busy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace rtmobile {

/// A contiguous range of CPU cores, the placement hint the sharded
/// serving layer uses to keep engine replicas from fighting over cores:
/// shard s gets [s * threads_per_shard, ...) and pins its pool there.
struct CoreRange {
  std::size_t begin = 0;
  std::size_t count = 0;
};

class ThreadPool {
 public:
  /// Spawns `threads` persistent workers (>= 1). When `affinity` is set,
  /// spawned workers are pinned round-robin onto that core range
  /// (best-effort: unsupported platforms and invalid cores are ignored).
  /// Core `affinity->begin` is left for the calling thread, which
  /// participates in every job and can pin itself via
  /// pin_current_thread().
  explicit ThreadPool(std::size_t threads,
                      std::optional<CoreRange> affinity = std::nullopt);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (the calling thread counts as one worker).
  [[nodiscard]] std::size_t thread_count() const {
    return configured_threads_;
  }

  /// Splits [0, n) into one contiguous chunk per worker and runs
  /// fn(chunk_begin, chunk_end) on each; blocks until all chunks finish.
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// parallel_for variant that also hands fn the chunk index (0-based,
  /// < min(thread_count(), n)). Each chunk index is claimed exactly once
  /// per job, so it can key per-chunk scratch storage without locking.
  void parallel_for_indexed(
      std::size_t n, const std::function<void(std::size_t, std::size_t,
                                              std::size_t)>& fn);

  /// Runs `tasks` concurrently across the pool (the caller participates);
  /// blocks until all complete. Not reentrant from inside a task.
  void run_all(const std::vector<std::function<void()>>& tasks);

  /// A sensible default worker count for this host (hardware_concurrency,
  /// at least 1, capped at 16 to stay in smartphone-core territory).
  [[nodiscard]] static std::size_t default_thread_count();

  /// Best-effort pin of the calling thread to one core; returns false when
  /// pinning is unsupported on this platform or the core does not exist.
  static bool pin_current_thread(std::size_t core);

 private:
  void worker_loop();
  /// Claims and runs tasks from the current job; returns when drained.
  void drain_current_job();

  std::vector<std::thread> threads_;  // the caller is the extra worker
  std::size_t configured_threads_ = 1;

  // Job publication protocol: the caller writes tasks_/task_count_/next_/
  // remaining_, then bumps generation_ (release); workers acquire-read
  // generation_ and then see a consistent job.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> shutting_down_{false};
  const std::vector<std::function<void()>>* tasks_ = nullptr;
  std::atomic<std::size_t> task_count_{0};
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> remaining_{0};

  std::mutex mutex_;  // guards sleeping/waking and error_
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::atomic<int> sleepers_{0};
  std::atomic<bool> caller_sleeping_{false};
  std::exception_ptr error_;
};

}  // namespace rtmobile
