// Analytic timing models for the mobile targets the paper measures on.
//
// We do not have a Snapdragon 855, so Table II's device columns are
// reproduced with a calibrated sublinear-scaling model (see DESIGN.md's
// substitution table):
//
//   time_us(workload) = overhead_us
//                       + gop / dense_gops * 1e6 * CR^(1 - q)
//
// i.e. pruning work by a factor CR only buys a CR^q speedup (q < 1): as
// compression rises the kernel becomes I/O- and memory-bound and the
// access pattern more irregular, so sustained throughput degrades as
// CR^(1-q). Equivalently effective_gops(CR) = dense_gops * CR^(q-1),
// reproducing Table II's observation that effective GOP/s falls from
// 161.55 (dense) to 25.27 (301x) on the GPU.
//
// Each preset is calibrated from exactly two anchors of Table II (the
// dense endpoint and the 301x endpoint) plus the sparsity exponent q;
// every intermediate row is then a *prediction* of the model that
// EXPERIMENTS.md compares against the paper's measurements (GPU within
// ~5%, CPU within ~16%).
#pragma once

#include <string>

namespace rtmobile {

/// One inference workload: total giga-operations per frame and the
/// compression rate of the weights it runs with.
struct Workload {
  double gop = 0.0;               // giga-operations per inference frame
  double compression_rate = 1.0;  // >= 1
};

class DeviceModel {
 public:
  /// `dense_gops`: sustained GOP/s on the uncompressed model;
  /// `sparsity_exponent`: q in the CR^q speedup law (in (0, 1]);
  /// `max_cr`: calibration range bound — behaviour beyond is clamped;
  /// `overhead_us`: fixed per-inference dispatch overhead;
  /// `power_watts`: average board power attributed to the device.
  DeviceModel(std::string name, double dense_gops, double sparsity_exponent,
              double max_cr, double overhead_us, double power_watts);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double power_watts() const { return power_watts_; }

  /// Sustained throughput at a given compression rate (clamped to the
  /// calibrated range).
  [[nodiscard]] double effective_gops(double compression_rate) const;

  /// Predicted per-frame inference time in microseconds.
  [[nodiscard]] double time_us(const Workload& workload) const;

  /// Energy per inference frame in joules.
  [[nodiscard]] double energy_per_frame_j(const Workload& workload) const;

  /// Inference frames per joule (the paper's energy-efficiency metric).
  [[nodiscard]] double frames_per_joule(const Workload& workload) const;

  /// Presets calibrated to Table II's endpoints.
  [[nodiscard]] static DeviceModel adreno640_gpu();
  [[nodiscard]] static DeviceModel kryo485_cpu();

 private:
  std::string name_;
  double dense_gops_;
  double sparsity_exponent_;
  double max_cr_;
  double overhead_us_;
  double power_watts_;
};

/// ESE's FPGA deployment (XCKU060): the fixed comparator the paper
/// normalizes energy efficiency against.
struct EseFpgaReference {
  double time_per_frame_us = 82.7;
  double power_watts = 41.0;

  [[nodiscard]] double frames_per_joule() const {
    return 1.0 / (power_watts * time_per_frame_us * 1e-6);
  }
};

}  // namespace rtmobile
