#include "speech/streaming_mfcc.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmobile::speech {
namespace {

// Regression window and normalizer shared with add_delta_features.
constexpr int kDeltaWindow = kDeltaRegressionWindow;
constexpr float kDeltaDenominator = kDeltaRegressionDenominator;
// With Δ/ΔΔ enabled a frame is final once this many successors exist:
// ΔΔ at t reads Δ at t±window, and Δ at t+window reads base rows up to
// t + 2*window.
constexpr std::size_t kDeltaLookahead =
    2 * static_cast<std::size_t>(kDeltaWindow);

}  // namespace

StreamingMfcc::StreamingMfcc(const MfccConfig& config)
    : extractor_(config), frame_scratch_(config) {
  RT_REQUIRE(!config.cepstral_mean_norm,
             "streaming MFCC cannot apply per-utterance CMN; disable "
             "cepstral_mean_norm");
}

void StreamingMfcc::push(std::span<const float> samples) {
  RT_REQUIRE(!finished_, "push after finish");
  buffer_.insert(buffer_.end(), samples.begin(), samples.end());

  const MfccConfig& cfg = config();
  const std::size_t dim = cfg.num_cepstra;
  while (true) {
    const std::size_t frame_start = num_frames_ * cfg.frame_shift;
    RT_ASSERT(frame_start >= buffer_start_, "frame window fell off buffer");
    const std::size_t offset = frame_start - buffer_start_;
    if (offset + cfg.frame_length > buffer_.size()) break;

    const float prev =
        offset > 0 ? buffer_[offset - 1]
                   : (frame_start > 0 ? prev_sample_ : 0.0F);
    base_.resize(base_.size() + dim);
    extractor_.extract_frame({buffer_.data() + offset, cfg.frame_length},
                             prev, {base_.data() + num_frames_ * dim, dim},
                             frame_scratch_);
    ++num_frames_;
  }

  // Compact: drop samples no future frame window can reach, keeping one
  // sample of pre-emphasis history before the next frame start. When
  // frame_shift > frame_length the next window starts beyond the data
  // received so far, so clamp to what the buffer actually holds.
  const std::size_t next_start = num_frames_ * cfg.frame_shift;
  if (next_start > buffer_start_ + 1) {
    const std::size_t drop =
        std::min(next_start - 1 - buffer_start_, buffer_.size());
    if (drop >= cfg.frame_shift) {  // amortize the memmove
      prev_sample_ = buffer_[drop - 1];
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(drop));
      buffer_start_ += drop;
    }
  }
}

void StreamingMfcc::finish() { finished_ = true; }

std::size_t StreamingMfcc::ready_frames() const {
  std::size_t final_count = num_frames_;
  if (config().add_deltas && !finished_) {
    final_count = num_frames_ > kDeltaLookahead
                      ? num_frames_ - kDeltaLookahead
                      : 0;
  }
  return final_count - std::min(emitted_, final_count);
}

std::span<const float> StreamingMfcc::base_row(std::size_t t) const {
  const std::size_t last = num_frames_ - 1;
  const std::size_t clamped = std::min(t, last);
  const std::size_t dim = config().num_cepstra;
  return {base_.data() + clamped * dim, dim};
}

float StreamingMfcc::delta_at(std::size_t t, std::size_t d) const {
  float acc = 0.0F;
  for (int n = 1; n <= kDeltaWindow; ++n) {
    const std::size_t un = static_cast<std::size_t>(n);
    const std::size_t back = t >= un ? t - un : 0;  // left edge clamps to 0
    acc += static_cast<float>(n) * (base_row(t + un)[d] - base_row(back)[d]);
  }
  return acc / kDeltaDenominator;
}

float StreamingMfcc::delta2_at(std::size_t t, std::size_t d) const {
  const std::size_t last = num_frames_ - 1;
  float acc = 0.0F;
  for (int n = 1; n <= kDeltaWindow; ++n) {
    const std::size_t un = static_cast<std::size_t>(n);
    const std::size_t fwd = std::min(t + un, last);
    const std::size_t back = t >= un ? t - un : 0;
    acc += static_cast<float>(n) * (delta_at(fwd, d) - delta_at(back, d));
  }
  return acc / kDeltaDenominator;
}

void StreamingMfcc::write_row(std::size_t t, std::span<float> out) const {
  const std::size_t dim = config().num_cepstra;
  const std::span<const float> base = base_row(t);
  std::copy(base.begin(), base.end(), out.begin());
  if (config().add_deltas) {
    for (std::size_t d = 0; d < dim; ++d) {
      out[dim + d] = delta_at(t, d);
      out[2 * dim + d] = delta2_at(t, d);
    }
  }
}

Matrix StreamingMfcc::pop_ready(std::size_t max_frames) {
  const std::size_t count = std::min(ready_frames(), max_frames);
  Matrix out(count, feature_dim());
  for (std::size_t i = 0; i < count; ++i) {
    write_row(emitted_ + i, out.row(i));
  }
  emitted_ += count;
  return out;
}

bool StreamingMfcc::pop_row(std::span<float> out) {
  if (ready_frames() == 0) return false;
  RT_REQUIRE(out.size() == feature_dim(),
             "pop_row: output must be feature_dim-sized");
  write_row(emitted_, out);
  ++emitted_;
  return true;
}

}  // namespace rtmobile::speech
