// Phone error rate: Levenshtein alignment of decoded vs reference phone
// sequences, aggregated over a test set — the metric of Table I.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rnn/model.hpp"
#include "speech/decoder.hpp"
#include "train/types.hpp"

namespace rtmobile::speech {

struct EditStats {
  std::size_t substitutions = 0;
  std::size_t insertions = 0;
  std::size_t deletions = 0;
  std::size_t reference_length = 0;

  [[nodiscard]] std::size_t total_errors() const {
    return substitutions + insertions + deletions;
  }
  /// Error rate in [0, inf): errors / reference length.
  [[nodiscard]] double rate() const;

  EditStats& operator+=(const EditStats& other);
};

/// Minimum-edit alignment (substitution/insertion/deletion all cost 1).
[[nodiscard]] EditStats align(std::span<const std::uint16_t> reference,
                              std::span<const std::uint16_t> hypothesis);

/// PER of a single (reference, hypothesis) pair as a percentage.
[[nodiscard]] double phone_error_rate(
    std::span<const std::uint16_t> reference,
    std::span<const std::uint16_t> hypothesis);

/// Corpus-level PER (%) of a model: decode every utterance, sum edit
/// counts, divide by total reference length (the standard aggregation).
[[nodiscard]] double corpus_per(const SpeechModel& model,
                                const std::vector<LabeledSequence>& data,
                                const DecoderConfig& config = DecoderConfig{});

}  // namespace rtmobile::speech
