#include "speech/phones.hpp"

#include <array>
#include <map>

#include "util/check.hpp"

namespace rtmobile::speech {
namespace {

// Folded class ids, in the canonical 39-class order used for scoring.
// (Lee & Hon folding: ih+ix, ah+ax+ax-h, aa+ao, er+axr, l+el, m+em,
// n+en+nx, ng+eng, sh+zh, uw+ux, hh+hv, and all closures/pauses -> sil;
// q is folded into silence as Kaldi's TIMIT s5 recipe does.)
const std::array<std::string, kNumFoldedPhones> kFoldedNames = {
    "iy", "ih", "eh", "ae", "ah", "uw", "uh", "aa", "ey", "ay",
    "oy", "aw", "ow", "er", "l",  "r",  "w",  "y",  "m",  "n",
    "ng", "v",  "f",  "dh", "th", "z",  "s",  "sh", "jh", "ch",
    "b",  "p",  "d",  "t",  "g",  "k",  "hh", "dx", "sil"};

[[nodiscard]] std::uint16_t fold(std::string_view name) {
  for (std::size_t i = 0; i < kFoldedNames.size(); ++i) {
    if (kFoldedNames[i] == name) return static_cast<std::uint16_t>(i);
  }
  RT_ASSERT(false, "unknown folded phone: " + std::string(name));
  return 0;
}

[[nodiscard]] std::vector<SurfacePhone> build_surface_table() {
  const auto f = [](std::string_view n) { return fold(n); };
  std::vector<SurfacePhone> table = {
      // Vowels.
      {"iy", f("iy"), PhoneClass::kVowel},
      {"ih", f("ih"), PhoneClass::kVowel},
      {"eh", f("eh"), PhoneClass::kVowel},
      {"ae", f("ae"), PhoneClass::kVowel},
      {"ix", f("ih"), PhoneClass::kVowel},
      {"ax", f("ah"), PhoneClass::kVowel},
      {"ah", f("ah"), PhoneClass::kVowel},
      {"ax-h", f("ah"), PhoneClass::kVowel},
      {"uw", f("uw"), PhoneClass::kVowel},
      {"ux", f("uw"), PhoneClass::kVowel},
      {"uh", f("uh"), PhoneClass::kVowel},
      {"ao", f("aa"), PhoneClass::kVowel},
      {"aa", f("aa"), PhoneClass::kVowel},
      {"ey", f("ey"), PhoneClass::kVowel},
      {"ay", f("ay"), PhoneClass::kVowel},
      {"oy", f("oy"), PhoneClass::kVowel},
      {"aw", f("aw"), PhoneClass::kVowel},
      {"ow", f("ow"), PhoneClass::kVowel},
      {"er", f("er"), PhoneClass::kVowel},
      {"axr", f("er"), PhoneClass::kVowel},
      // Semivowels and liquids.
      {"l", f("l"), PhoneClass::kSemivowel},
      {"el", f("l"), PhoneClass::kSemivowel},
      {"r", f("r"), PhoneClass::kSemivowel},
      {"w", f("w"), PhoneClass::kSemivowel},
      {"y", f("y"), PhoneClass::kSemivowel},
      // Nasals.
      {"m", f("m"), PhoneClass::kNasal},
      {"em", f("m"), PhoneClass::kNasal},
      {"n", f("n"), PhoneClass::kNasal},
      {"en", f("n"), PhoneClass::kNasal},
      {"nx", f("n"), PhoneClass::kNasal},
      {"ng", f("ng"), PhoneClass::kNasal},
      {"eng", f("ng"), PhoneClass::kNasal},
      // Fricatives.
      {"v", f("v"), PhoneClass::kFricative},
      {"f", f("f"), PhoneClass::kFricative},
      {"dh", f("dh"), PhoneClass::kFricative},
      {"th", f("th"), PhoneClass::kFricative},
      {"z", f("z"), PhoneClass::kFricative},
      {"s", f("s"), PhoneClass::kFricative},
      {"zh", f("sh"), PhoneClass::kFricative},
      {"sh", f("sh"), PhoneClass::kFricative},
      {"hh", f("hh"), PhoneClass::kFricative},
      {"hv", f("hh"), PhoneClass::kFricative},
      // Affricates.
      {"jh", f("jh"), PhoneClass::kAffricate},
      {"ch", f("ch"), PhoneClass::kAffricate},
      // Stops and flap.
      {"b", f("b"), PhoneClass::kStop},
      {"p", f("p"), PhoneClass::kStop},
      {"d", f("d"), PhoneClass::kStop},
      {"t", f("t"), PhoneClass::kStop},
      {"g", f("g"), PhoneClass::kStop},
      {"k", f("k"), PhoneClass::kStop},
      {"dx", f("dx"), PhoneClass::kStop},
      // Closures (all fold to silence for scoring).
      {"bcl", f("sil"), PhoneClass::kClosure},
      {"dcl", f("sil"), PhoneClass::kClosure},
      {"gcl", f("sil"), PhoneClass::kClosure},
      {"pcl", f("sil"), PhoneClass::kClosure},
      {"tcl", f("sil"), PhoneClass::kClosure},
      {"kcl", f("sil"), PhoneClass::kClosure},
      {"epi", f("sil"), PhoneClass::kClosure},
      {"q", f("sil"), PhoneClass::kClosure},
      // Silences.
      {"h#", f("sil"), PhoneClass::kSilence},
      {"pau", f("sil"), PhoneClass::kSilence},
  };
  RT_ASSERT(table.size() == kNumSurfacePhones,
            "surface phone table must have 61 entries");
  return table;
}

}  // namespace

const std::vector<SurfacePhone>& surface_phones() {
  static const std::vector<SurfacePhone> table = build_surface_table();
  return table;
}

const std::vector<std::string>& folded_phone_names() {
  static const std::vector<std::string> names(kFoldedNames.begin(),
                                              kFoldedNames.end());
  return names;
}

std::uint16_t silence_phone() { return fold("sil"); }

std::size_t surface_phone_id(std::string_view name) {
  const auto& table = surface_phones();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i].name == name) return i;
  }
  RT_REQUIRE(false, "unknown surface phone: " + std::string(name));
  throw std::invalid_argument(std::string(name));  // unreachable
}

std::uint16_t folded_phone_id(std::string_view name) {
  for (std::size_t i = 0; i < kFoldedNames.size(); ++i) {
    if (kFoldedNames[i] == name) return static_cast<std::uint16_t>(i);
  }
  RT_REQUIRE(false, "unknown folded phone: " + std::string(name));
  throw std::invalid_argument(std::string(name));  // unreachable
}

}  // namespace rtmobile::speech
