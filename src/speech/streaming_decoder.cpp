#include "speech/streaming_decoder.hpp"

#include <algorithm>
#include <numeric>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace rtmobile::speech {

const char* to_string(DecodeMode mode) {
  switch (mode) {
    case DecodeMode::kNone: return "none";
    case DecodeMode::kGreedy: return "greedy";
    case DecodeMode::kViterbi: return "viterbi";
  }
  return "?";
}

const char* to_string(StreamEventKind kind) {
  switch (kind) {
    case StreamEventKind::kHypothesis: return "hypothesis";
    case StreamEventKind::kDegraded: return "degraded";
    case StreamEventKind::kRejected: return "rejected";
    case StreamEventKind::kAborted: return "aborted";
  }
  return "?";
}

bool operator==(const StreamEvent& a, const StreamEvent& b) {
  return a.kind == b.kind && a.frames == b.frames &&
         a.dropped_frames == b.dropped_frames && a.stable == b.stable &&
         a.partial == b.partial && a.is_final == b.is_final;
}

StreamingDecoder::StreamingDecoder(std::size_t num_classes,
                                   const StreamingDecoderConfig& config)
    : classes_(num_classes), config_(config) {
  RT_REQUIRE(num_classes >= 1, "streaming decoder: need >= 1 class");
  RT_REQUIRE(config_.mode != DecodeMode::kNone,
             "streaming decoder: mode kNone means no decoder — do not "
             "construct one");
  if (config_.mode == DecodeMode::kGreedy) {
    config_.greedy.validate();
  } else {
    RT_REQUIRE(config_.switch_penalty >= 0.0,
               "streaming decoder: switch penalty must be non-negative");
    score_.resize(classes_);
    next_score_.resize(classes_);
    log_probs_.resize(classes_);
  }
}

void StreamingDecoder::push_row(std::span<const float> row) {
  RT_REQUIRE(!finished_, "streaming decoder: push after finish");
  RT_REQUIRE(row.size() == classes_,
             "streaming decoder: logits row width mismatch");
  if (config_.mode == DecodeMode::kGreedy) {
    labels_.push_back(static_cast<std::uint16_t>(argmax(row)));
    ++frames_;
    advance_greedy();
    publish();
    return;
  }
  viterbi_step(row);
  // Scans (and the partial backtrack publish() performs) follow the
  // backoff schedule; the DP itself advances every frame regardless, so
  // skipped frames cost O(classes) and finals are unaffected.
  if (frames_ < next_stabilize_) return;
  const std::size_t before = path_done_;
  viterbi_stabilize();
  stabilize_gap_ = path_done_ > before ? 1 : stabilize_gap_ * 2;
  next_stabilize_ = frames_ + stabilize_gap_;
  publish();
}

void StreamingDecoder::finish() {
  if (finished_) return;
  finished_ = true;
  if (config_.mode == DecodeMode::kGreedy) {
    finish_greedy();
  } else if (frames_ > 0) {
    viterbi_emit_range(frames_ - 1, viterbi_best_state());
  }
  publish();
}

std::size_t StreamingDecoder::poll_events(std::vector<StreamEvent>& out) {
  const std::size_t moved = events_.size();
  out.insert(out.end(), std::make_move_iterator(events_.begin()),
             std::make_move_iterator(events_.end()));
  events_.clear();
  return moved;
}

std::vector<std::uint16_t> StreamingDecoder::hypothesis() const {
  std::vector<std::uint16_t> all(stable_.begin(), stable_.end());
  all.insert(all.end(), partial_.begin(), partial_.end());
  return all;
}

// ------------------------------------------------------------------ greedy

void StreamingDecoder::advance_greedy() {
  const std::size_t window = config_.greedy.smooth_window;
  const std::size_t half = window / 2;
  const std::size_t size = labels_.size();

  // How many smoothed labels are final. majority_smooth is the identity
  // for window <= 1 and for utterances of <= 2 frames — so with a real
  // window nothing is final until a 3rd frame proves the identity case
  // cannot apply, and then a frame is final once its full right half has
  // arrived. finish() finalizes the clipped tail.
  std::size_t finalizable = 0;
  if (window <= 1) {
    finalizable = size;
  } else if (finished_) {
    finalizable = size;
  } else if (size >= 3) {
    finalizable = size > half ? size - half : 0;
  }

  const bool identity = window <= 1 || (finished_ && size <= 2);
  for (std::size_t t = smoothed_.size(); t < finalizable; ++t) {
    std::uint16_t label = labels_[t];
    if (!identity) {
      const std::size_t lo = t >= half ? t - half : 0;
      const std::size_t hi = std::min(size, t + half + 1);
      label = majority_vote(labels_, lo, hi, labels_[t]);
    }
    smoothed_.push_back(label);
    collapse_push(label);
  }
}

void StreamingDecoder::collapse_push(std::uint16_t label) {
  if (run_open_ && label == run_label_) {
    ++run_length_;
  } else {
    // The previous run's fate (kept or dropped) was decided the moment
    // it reached min_run; a shorter run simply never emitted.
    run_open_ = true;
    run_label_ = label;
    run_length_ = 1;
    run_emitted_ = false;
  }
  if (!run_emitted_ && run_length_ >= config_.greedy.min_run) {
    // Matches collapse_runs: a kept run whose label equals the last kept
    // one is absorbed, not repeated.
    if (stable_.empty() || stable_.back() != run_label_) {
      stable_.push_back(run_label_);
    }
    run_emitted_ = true;
  }
}

void StreamingDecoder::finish_greedy() {
  advance_greedy();  // finalizes the clipped-window tail
  // collapse_runs' degenerate fallback: if every run was shorter than
  // min_run the batch decoder re-collapses with min_run = 1 so a
  // non-empty utterance never decodes to nothing.
  if (stable_.empty() && !smoothed_.empty()) {
    stable_ = collapse_runs(smoothed_, 1);
  }
}

std::vector<std::uint16_t> StreamingDecoder::greedy_partial() const {
  std::vector<std::uint16_t> seq;
  if (run_open_ && !run_emitted_) seq.push_back(run_label_);
  const std::size_t window = config_.greedy.smooth_window;
  const std::size_t half = window / 2;
  const std::size_t size = labels_.size();
  // Provisional smoothing of the not-yet-final frames with the clipped
  // window we have so far (identity while the utterance could still end
  // at <= 2 frames).
  const bool identity = window <= 1 || size < 3;
  for (std::size_t t = smoothed_.size(); t < size; ++t) {
    std::uint16_t label = labels_[t];
    if (!identity) {
      const std::size_t lo = t >= half ? t - half : 0;
      const std::size_t hi = std::min(size, t + half + 1);
      label = majority_vote(labels_, lo, hi, labels_[t]);
    }
    if (seq.empty() || seq.back() != label) seq.push_back(label);
  }
  if (!seq.empty() && !stable_.empty() && seq.front() == stable_.back()) {
    seq.erase(seq.begin());
  }
  return seq;
}

// ----------------------------------------------------------------- viterbi

void StreamingDecoder::viterbi_step(std::span<const float> row) {
  // Mirrors viterbi_path()'s DP frame step operation-for-operation so the
  // scores — and therefore every tie-break — are bit-identical.
  if (frames_ == 0) {
    log_softmax(row, log_probs_);
    for (std::size_t c = 0; c < classes_; ++c) {
      score_[c] = static_cast<double>(log_probs_[c]);
    }
    backpointers_.resize(classes_);  // frame 0 row, never read
    ++frames_;
    return;
  }

  const std::size_t t = frames_;
  std::size_t best_prev = 0;
  std::size_t second_prev = classes_ > 1 ? 1 : 0;
  if (classes_ > 1 && score_[second_prev] > score_[best_prev]) {
    std::swap(best_prev, second_prev);
  }
  for (std::size_t c = 2; c < classes_; ++c) {
    if (score_[c] > score_[best_prev]) {
      second_prev = best_prev;
      best_prev = c;
    } else if (score_[c] > score_[second_prev]) {
      second_prev = c;
    }
  }

  log_softmax(row, log_probs_);
  backpointers_.resize((t + 1) * classes_);
  for (std::size_t c = 0; c < classes_; ++c) {
    const double stay = score_[c];
    const std::size_t switch_from = c == best_prev ? second_prev : best_prev;
    const double switched = score_[switch_from] - config_.switch_penalty;
    if (stay >= switched) {
      next_score_[c] = stay + static_cast<double>(log_probs_[c]);
      backpointers_[t * classes_ + c] = static_cast<std::uint16_t>(c);
    } else {
      next_score_[c] = switched + static_cast<double>(log_probs_[c]);
      backpointers_[t * classes_ + c] =
          static_cast<std::uint16_t>(switch_from);
    }
  }
  std::swap(score_, next_score_);
  ++frames_;
}

void StreamingDecoder::viterbi_stabilize() {
  if (path_done_ == frames_) return;
  if (classes_ == 1) {  // a single class converges trivially every frame
    viterbi_emit_range(frames_ - 1, 0);
    return;
  }
  // Walk every class's backtrack down in lockstep; once all live paths
  // pass through one state at some frame k, the path below k can never
  // change again (Bellman: any future best path extends one of the
  // current ones, all of which funnel through that state).
  converge_.resize(classes_);
  std::iota(converge_.begin(), converge_.end(), std::uint16_t{0});
  std::size_t k = frames_ - 1;
  const auto all_equal = [this] {
    for (std::size_t i = 1; i < classes_; ++i) {
      if (converge_[i] != converge_[0]) return false;
    }
    return true;
  };
  while (!all_equal() && k > path_done_) {
    for (std::size_t i = 0; i < classes_; ++i) {
      converge_[i] = backpointers_[k * classes_ + converge_[i]];
    }
    --k;
  }
  if (!all_equal()) return;  // nothing new stabilized this frame
  viterbi_emit_range(k, converge_[0]);
}

void StreamingDecoder::viterbi_emit_range(std::size_t upto,
                                          std::uint16_t state) {
  if (upto < path_done_) return;
  const std::size_t n = upto - path_done_ + 1;
  backtrack_.resize(n);
  backtrack_[n - 1] = state;
  for (std::size_t j = upto; j > path_done_; --j) {
    backtrack_[j - 1 - path_done_] =
        backpointers_[j * classes_ + backtrack_[j - path_done_]];
  }
  // collapse_runs(path, 1): plain consecutive dedup, nothing dropped.
  for (const std::uint16_t label : backtrack_) {
    if (stable_.empty() || stable_.back() != label) {
      stable_.push_back(label);
    }
  }
  path_done_ = upto + 1;
}

std::uint16_t StreamingDecoder::viterbi_best_state() const {
  std::size_t best = 0;
  for (std::size_t c = 1; c < classes_; ++c) {
    if (score_[c] > score_[best]) best = c;
  }
  return static_cast<std::uint16_t>(best);
}

std::vector<std::uint16_t> StreamingDecoder::viterbi_partial() const {
  std::vector<std::uint16_t> seq;
  if (path_done_ == frames_) return seq;
  const std::size_t last = frames_ - 1;
  std::vector<std::uint16_t> path(frames_ - path_done_);
  path.back() = viterbi_best_state();
  for (std::size_t j = last; j > path_done_; --j) {
    path[j - 1 - path_done_] =
        backpointers_[j * classes_ + path[j - path_done_]];
  }
  for (const std::uint16_t label : path) {
    if (seq.empty() || seq.back() != label) seq.push_back(label);
  }
  if (!seq.empty() && !stable_.empty() && seq.front() == stable_.back()) {
    seq.erase(seq.begin());
  }
  return seq;
}

// ------------------------------------------------------------------ events

void StreamingDecoder::publish() {
  std::vector<std::uint16_t> partial;
  if (!finished_) {  // a finished stream has no unstable tail by definition
    partial = config_.mode == DecodeMode::kGreedy ? greedy_partial()
                                                  : viterbi_partial();
  }
  const bool stable_grew = stable_.size() > published_stable_;
  const bool partial_changed = partial != partial_;
  const bool final_pending = finished_ && !published_final_;
  partial_ = std::move(partial);
  if (!stable_grew && !partial_changed && !final_pending) return;

  StreamEvent event;
  event.frames = frames_;
  event.stable.assign(stable_.begin() +
                          static_cast<std::ptrdiff_t>(published_stable_),
                      stable_.end());
  event.partial = partial_;
  event.is_final = finished_;
  events_.push_back(std::move(event));
  published_stable_ = stable_.size();
  published_final_ = published_final_ || finished_;
}

}  // namespace rtmobile::speech
