#include "speech/synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace rtmobile::speech {
namespace {

/// Deterministic per-phone acoustics: seeded from the phone's index so the
/// table is stable across runs, with class-appropriate structure.
std::vector<PhoneAcoustics> build_acoustics() {
  const auto& phones = surface_phones();
  std::vector<PhoneAcoustics> table(phones.size());
  Rng rng(0xAC0057ULL);  // fixed: the table is part of the corpus definition
  for (std::size_t i = 0; i < phones.size(); ++i) {
    PhoneAcoustics& a = table[i];
    switch (phones[i].phone_class) {
      case PhoneClass::kVowel:
        a.f1_hz = 250.0 + 600.0 * rng.next_double();
        a.f2_hz = 850.0 + 1600.0 * rng.next_double();
        a.f3_hz = 2400.0 + 900.0 * rng.next_double();
        a.voicing = 1.0;
        a.level = 1.0;
        break;
      case PhoneClass::kSemivowel:
        a.f1_hz = 280.0 + 300.0 * rng.next_double();
        a.f2_hz = 700.0 + 1100.0 * rng.next_double();
        a.f3_hz = 2200.0 + 700.0 * rng.next_double();
        a.voicing = 0.95;
        a.level = 0.8;
        break;
      case PhoneClass::kNasal:
        a.f1_hz = 200.0 + 150.0 * rng.next_double();
        a.f2_hz = 1000.0 + 500.0 * rng.next_double();
        a.f3_hz = 2000.0 + 500.0 * rng.next_double();
        a.voicing = 0.9;
        a.level = 0.6;
        break;
      case PhoneClass::kFricative:
        a.noise_center_hz = 1500.0 + 5000.0 * rng.next_double();
        a.noise_width_hz = 600.0 + 1800.0 * rng.next_double();
        a.voicing = rng.next_double() < 0.5 ? 0.3 : 0.0;  // voiced/unvoiced
        a.level = 0.5;
        break;
      case PhoneClass::kAffricate:
        a.noise_center_hz = 2500.0 + 2500.0 * rng.next_double();
        a.noise_width_hz = 1200.0 + 1200.0 * rng.next_double();
        a.voicing = 0.15;
        a.level = 0.55;
        break;
      case PhoneClass::kStop:
        a.noise_center_hz = 1000.0 + 4000.0 * rng.next_double();
        a.noise_width_hz = 2500.0;
        a.voicing = 0.0;
        a.level = 0.7;
        break;
      case PhoneClass::kClosure:
      case PhoneClass::kSilence:
        a.level = 0.0;
        break;
    }
  }
  return table;
}

}  // namespace

const std::vector<PhoneAcoustics>& phone_acoustics() {
  static const std::vector<PhoneAcoustics> table = build_acoustics();
  return table;
}

Synthesizer::Synthesizer(const SynthConfig& config) : config_(config) {
  RT_REQUIRE(config.sample_rate_hz > 0.0, "sample rate must be positive");
  RT_REQUIRE(config.pitch_hz > 0.0, "pitch must be positive");
}

void Synthesizer::render_phone(std::size_t surface_phone,
                               std::size_t num_samples, Rng& rng,
                               std::vector<float>& out) const {
  RT_REQUIRE(surface_phone < kNumSurfacePhones, "surface phone out of range");
  const auto& phones = surface_phones();
  const PhoneAcoustics& acoustics = phone_acoustics()[surface_phone];
  const PhoneClass cls = phones[surface_phone].phone_class;
  const double fs = config_.sample_rate_hz;
  const double two_pi = 2.0 * std::numbers::pi;
  const double pitch =
      config_.pitch_hz *
      (1.0 + config_.pitch_jitter * (rng.next_double() * 2.0 - 1.0));

  // Stops: first 60% closure, then burst.
  const std::size_t burst_start =
      cls == PhoneClass::kStop ? num_samples * 3 / 5 : 0;

  double band_state = 0.0;  // one-pole state for band-ish noise shaping
  for (std::size_t n = 0; n < num_samples; ++n) {
    const double t = static_cast<double>(n) / fs;
    double sample = config_.noise_floor * (rng.next_double() * 2.0 - 1.0);

    if (acoustics.level > 0.0) {
      double voiced = 0.0;
      if (acoustics.voicing > 0.0 && acoustics.f1_hz > 0.0) {
        // Three formant partials locked to multiples of the glottal pulse
        // train frequency — a crude but spectrally structured source.
        const double envelope =
            0.5 * (1.0 - std::cos(two_pi * pitch * t));  // pitch-rate AM
        voiced = (0.6 * std::sin(two_pi * acoustics.f1_hz * t) +
                  0.3 * std::sin(two_pi * acoustics.f2_hz * t) +
                  0.15 * std::sin(two_pi * acoustics.f3_hz * t)) *
                 envelope;
      }
      double noisy = 0.0;
      if (acoustics.noise_center_hz > 0.0 && n >= burst_start) {
        // White noise ring-modulated to the band center, smoothed by a
        // one-pole filter whose bandwidth tracks noise_width.
        const double white = rng.next_double() * 2.0 - 1.0;
        const double alpha =
            std::clamp(acoustics.noise_width_hz / fs * two_pi, 0.05, 0.95);
        band_state += alpha * (white - band_state);
        noisy = band_state * std::sin(two_pi * acoustics.noise_center_hz * t);
        if (cls == PhoneClass::kStop) {
          // Burst decays quickly after release.
          const double since_burst =
              static_cast<double>(n - burst_start) / fs;
          noisy *= std::exp(-since_burst * 80.0);
        }
      }
      sample += config_.amplitude * acoustics.level *
                (acoustics.voicing * voiced +
                 (1.0 - acoustics.voicing) * 2.0 * noisy);
    }
    out.push_back(static_cast<float>(sample));
  }
}

std::vector<float> Synthesizer::render_sequence(
    std::span<const std::size_t> phones_seq,
    std::span<const std::size_t> durations_samples, Rng& rng) const {
  RT_REQUIRE(phones_seq.size() == durations_samples.size(),
             "phones/durations length mismatch");
  RT_REQUIRE(!phones_seq.empty(), "empty phone sequence");

  std::vector<float> waveform;
  std::size_t total = 0;
  for (const std::size_t d : durations_samples) total += d;
  waveform.reserve(total);

  const std::size_t fade =
      static_cast<std::size_t>(config_.coarticulation_ms / 1000.0 *
                               config_.sample_rate_hz);
  std::size_t previous_begin = 0;  // where the previous phone's samples start
  for (std::size_t p = 0; p < phones_seq.size(); ++p) {
    std::vector<float> segment;
    segment.reserve(durations_samples[p]);
    render_phone(phones_seq[p], durations_samples[p], rng, segment);
    if (p == 0 || fade == 0) {
      previous_begin = waveform.size();
      waveform.insert(waveform.end(), segment.begin(), segment.end());
    } else {
      // Cross-fade the tail of the previous phone with the head of this
      // one; the overlap cannot reach back past the previous phone's start.
      const std::size_t overlap =
          std::min({fade, segment.size(), waveform.size() - previous_begin});
      const std::size_t fade_begin = waveform.size() - overlap;
      for (std::size_t i = 0; i < overlap; ++i) {
        const float alpha =
            static_cast<float>(i + 1) / static_cast<float>(overlap + 1);
        waveform[fade_begin + i] =
            (1.0F - alpha) * waveform[fade_begin + i] + alpha * segment[i];
      }
      waveform.insert(waveform.end(),
                      segment.begin() + static_cast<std::ptrdiff_t>(overlap),
                      segment.end());
      previous_begin = fade_begin;
    }
  }
  return waveform;
}

// --------------------------------------------- repeat-heavy traffic model

namespace {
/// Derives an independent seed stream from (seed, salt).
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (salt + 1));
  return splitmix64(s);
}
}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double skew) : skew_(skew) {
  RT_REQUIRE(n > 0, "zipf: need at least one rank");
  RT_REQUIRE(skew >= 0.0, "zipf: skew must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t rank) const {
  RT_REQUIRE(rank < cdf_.size(), "zipf: rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

UtteranceRepeatGenerator::UtteranceRepeatGenerator(
    const RepeatTrafficConfig& config)
    : config_(config),
      zipf_(config.distinct_utterances, config.skew),
      // The draw stream and the pool derive from disjoint seed mixes, so
      // drawing more traffic never perturbs pool contents (and the pool
      // is identical across generators sharing a config).
      draw_rng_(mix_seed(config.seed, 0xD12AFFULL)) {
  RT_REQUIRE(config_.phones_per_utterance > 0,
             "traffic: utterances need at least one phone");
  RT_REQUIRE(config_.samples_per_phone > 0,
             "traffic: phones need at least one sample");
  const Synthesizer synth(config_.synth);
  pool_.reserve(config_.distinct_utterances);
  for (std::size_t rank = 0; rank < config_.distinct_utterances; ++rank) {
    Rng rng(mix_seed(config_.seed, rank));
    std::vector<std::size_t> phones(config_.phones_per_utterance);
    std::vector<std::size_t> durations(config_.phones_per_utterance,
                                       config_.samples_per_phone);
    for (std::size_t& p : phones) p = rng.next_below(kNumSurfacePhones);
    pool_.push_back(synth.render_sequence(phones, durations, rng));
  }
}

std::size_t UtteranceRepeatGenerator::next_rank() {
  return zipf_.sample(draw_rng_);
}

const std::vector<float>& UtteranceRepeatGenerator::next_wave() {
  return pool_[next_rank()];
}

const std::vector<float>& UtteranceRepeatGenerator::utterance(
    std::size_t rank) const {
  RT_REQUIRE(rank < pool_.size(), "traffic: rank out of range");
  return pool_[rank];
}

}  // namespace rtmobile::speech
