#include "speech/per.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmobile::speech {

double EditStats::rate() const {
  if (reference_length == 0) return total_errors() == 0 ? 0.0 : 1.0;
  return static_cast<double>(total_errors()) /
         static_cast<double>(reference_length);
}

EditStats& EditStats::operator+=(const EditStats& other) {
  substitutions += other.substitutions;
  insertions += other.insertions;
  deletions += other.deletions;
  reference_length += other.reference_length;
  return *this;
}

EditStats align(std::span<const std::uint16_t> reference,
                std::span<const std::uint16_t> hypothesis) {
  const std::size_t n = reference.size();
  const std::size_t m = hypothesis.size();

  // Wagner-Fischer with full backtrace to split errors by type.
  struct Cell {
    std::uint32_t cost;
    std::uint8_t op;  // 0 match, 1 substitute, 2 insert, 3 delete
  };
  std::vector<Cell> dp((n + 1) * (m + 1));
  const auto at = [&](std::size_t i, std::size_t j) -> Cell& {
    return dp[i * (m + 1) + j];
  };
  for (std::size_t j = 0; j <= m; ++j) {
    at(0, j) = {static_cast<std::uint32_t>(j), 2};
  }
  for (std::size_t i = 0; i <= n; ++i) {
    at(i, 0) = {static_cast<std::uint32_t>(i), 3};
  }
  at(0, 0) = {0, 0};
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const bool match = reference[i - 1] == hypothesis[j - 1];
      const std::uint32_t diag = at(i - 1, j - 1).cost + (match ? 0 : 1);
      const std::uint32_t ins = at(i, j - 1).cost + 1;
      const std::uint32_t del = at(i - 1, j).cost + 1;
      Cell cell{diag, static_cast<std::uint8_t>(match ? 0 : 1)};
      if (ins < cell.cost) cell = {ins, 2};
      if (del < cell.cost) cell = {del, 3};
      at(i, j) = cell;
    }
  }

  EditStats stats;
  stats.reference_length = n;
  std::size_t i = n;
  std::size_t j = m;
  while (i > 0 || j > 0) {
    const Cell& cell = at(i, j);
    switch (cell.op) {
      case 0:
        --i;
        --j;
        break;
      case 1:
        ++stats.substitutions;
        --i;
        --j;
        break;
      case 2:
        ++stats.insertions;
        --j;
        break;
      case 3:
        ++stats.deletions;
        --i;
        break;
      default:
        RT_ASSERT(false, "invalid backtrace op");
    }
  }
  RT_ASSERT(stats.total_errors() == at(n, m).cost,
            "backtrace/cost disagreement");
  return stats;
}

double phone_error_rate(std::span<const std::uint16_t> reference,
                        std::span<const std::uint16_t> hypothesis) {
  return align(reference, hypothesis).rate() * 100.0;
}

double corpus_per(const SpeechModel& model,
                  const std::vector<LabeledSequence>& data,
                  const DecoderConfig& config) {
  RT_REQUIRE(!data.empty(), "corpus_per: empty dataset");
  EditStats total;
  for (const LabeledSequence& utt : data) {
    RT_REQUIRE(!utt.phones.empty(),
               "corpus_per: utterance lacks a reference phone sequence");
    const Matrix logits = model.forward(utt.features);
    const std::vector<std::uint16_t> decoded = greedy_decode(logits, config);
    total += align({utt.phones.data(), utt.phones.size()},
                   {decoded.data(), decoded.size()});
  }
  return total.rate() * 100.0;
}

}  // namespace rtmobile::speech
