// MFCC front end: pre-emphasis, Hamming windowing, FFT power spectrum,
// mel filter bank, log compression, DCT-II, and delta features.
//
// Defaults follow the Kaldi TIMIT recipe: 16 kHz audio, 25 ms window,
// 10 ms hop, 512-point FFT, 26 mel filters, 13 cepstra; with Δ and ΔΔ the
// feature dimension is 39 — the same per-frame dimension the paper's GRU
// consumes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/fft.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile::speech {

struct MfccConfig {
  double sample_rate_hz = 16000.0;
  std::size_t frame_length = 400;  // 25 ms at 16 kHz
  std::size_t frame_shift = 160;   // 10 ms at 16 kHz
  std::size_t fft_size = 512;
  std::size_t num_mel_filters = 26;
  std::size_t num_cepstra = 13;
  double preemphasis = 0.97;
  double low_freq_hz = 20.0;
  double high_freq_hz = 8000.0;
  bool add_deltas = true;         // append Δ and ΔΔ (13 -> 39 dims)
  bool cepstral_mean_norm = true; // per-utterance CMN
};

/// Frequency (Hz) -> mel scale.
[[nodiscard]] double hz_to_mel(double hz);
/// Mel scale -> frequency (Hz).
[[nodiscard]] double mel_to_hz(double mel);

/// Precomputed triangular mel filter bank over FFT bins.
class MelFilterBank {
 public:
  explicit MelFilterBank(const MfccConfig& config);

  [[nodiscard]] std::size_t num_filters() const { return filters_.size(); }

  /// Applies the bank to a power spectrum (fft_size/2+1 bins), writing
  /// num_filters() energies into `energies`. Allocation-free — the
  /// per-frame path of the streaming front end.
  void apply(std::span<const float> power_spectrum,
             std::span<float> energies) const;

  /// Triangle weights of filter `f` (over all bins; zero outside support).
  [[nodiscard]] std::span<const float> filter(std::size_t f) const;

 private:
  std::size_t num_bins_;
  std::vector<std::vector<float>> filters_;
};

/// Computes the MFCC (+Δ, +ΔΔ) matrix of a waveform: one row per frame.
class MfccExtractor {
 public:
  explicit MfccExtractor(const MfccConfig& config = MfccConfig{});

  [[nodiscard]] const MfccConfig& config() const { return config_; }

  /// Feature dimension per frame (13 or 39 depending on add_deltas).
  [[nodiscard]] std::size_t feature_dim() const;

  /// Number of frames the extractor will produce for `num_samples`.
  [[nodiscard]] std::size_t frame_count(std::size_t num_samples) const;

  /// Full pipeline. The waveform must contain at least one frame.
  [[nodiscard]] Matrix extract(std::span<const float> waveform) const;

  /// Every buffer one frame's extraction touches: the windowed frame,
  /// the FFT workspace, the power-spectrum bins, and the mel energies.
  /// Per-frame callers (extract(), the streaming front end) construct
  /// one of these once and reuse it, which makes the 10 ms frame path
  /// allocation-free.
  struct FrameScratch {
    explicit FrameScratch(const MfccConfig& config)
        : frame(config.frame_length),
          fft(config.fft_size),
          power(config.fft_size / 2 + 1),
          mel(config.num_mel_filters) {}
    std::vector<float> frame;
    std::vector<Complex> fft;
    std::vector<float> power;
    std::vector<float> mel;
  };

  /// Cepstra of a single frame: `samples` is the frame_length-sample
  /// window and `prev_sample` the sample preceding it (0 at stream
  /// start), which pre-emphasis of the first sample needs. Writes
  /// num_cepstra values into `cepstra` using caller-provided scratch:
  /// no heap allocation at all. extract() and the streaming front end
  /// both call this, so chunked extraction is bit-identical to batch
  /// extraction.
  void extract_frame(std::span<const float> samples, float prev_sample,
                     std::span<float> cepstra, FrameScratch& scratch) const;

 private:
  /// The whole per-frame pipeline over caller-provided buffers.
  void extract_frame_impl(std::span<const float> samples, float prev_sample,
                          std::span<float> cepstra, std::span<float> frame,
                          std::span<Complex> fft, std::span<float> power,
                          std::span<float> mel) const;

  MfccConfig config_;
  MelFilterBank mel_bank_;
  std::vector<float> window_;      // Hamming coefficients
  std::vector<float> dct_;         // [num_cepstra x num_mel_filters]
};

/// Regression window of the Δ/ΔΔ features and its normalizer
/// 2 * sum(n^2). Shared between add_delta_features and the streaming
/// front end so the two paths cannot drift apart.
inline constexpr int kDeltaRegressionWindow = 2;
inline constexpr float kDeltaRegressionDenominator = 10.0F;

/// Appends Δ and ΔΔ columns (regression window of 2) to a feature matrix.
[[nodiscard]] Matrix add_delta_features(const Matrix& base);

/// Per-utterance cepstral mean normalization (in place, column-wise).
void cepstral_mean_normalize(Matrix& features);

}  // namespace rtmobile::speech
