#include "speech/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace rtmobile::speech {
namespace {

/// Class-based bigram affinity: how plausible is `to` following `from`.
double class_affinity(PhoneClass from, PhoneClass to) {
  using PC = PhoneClass;
  // Vowel-consonant alternation with closure->stop structure: a light
  // caricature of English phonotactics, enough to give the corpus
  // non-uniform transition statistics.
  switch (from) {
    case PC::kVowel:
      if (to == PC::kVowel) return 0.15;
      if (to == PC::kClosure) return 1.2;
      return 1.0;
    case PC::kSemivowel:
    case PC::kNasal:
      if (to == PC::kVowel) return 2.0;
      if (to == PC::kClosure) return 0.5;
      return 0.3;
    case PC::kFricative:
    case PC::kAffricate:
      if (to == PC::kVowel) return 2.2;
      if (to == PC::kSemivowel) return 0.6;
      return 0.2;
    case PC::kStop:
      if (to == PC::kVowel) return 2.5;
      if (to == PC::kSemivowel) return 0.8;
      return 0.15;
    case PC::kClosure:
      if (to == PC::kStop) return 4.0;  // closures release into stops
      if (to == PC::kAffricate) return 1.0;
      return 0.05;
    case PC::kSilence:
      if (to == PC::kVowel || to == PC::kFricative || to == PC::kStop ||
          to == PC::kClosure) {
        return 1.0;
      }
      return 0.5;
  }
  return 0.5;
}

}  // namespace

SyntheticTimit::SyntheticTimit(const CorpusConfig& config)
    : config_(config),
      synth_(SynthConfig{}),
      mfcc_(MfccConfig{}) {
  RT_REQUIRE(config.min_phones >= 2 && config.max_phones >= config.min_phones,
             "invalid phone-count range");
  RT_REQUIRE(config.min_frames_per_phone >= 1 &&
                 config.max_frames_per_phone >= config.min_frames_per_phone,
             "invalid frames-per-phone range");
  RT_REQUIRE(config.feature_dim > 0, "feature_dim must be positive");
  prototypes_ = build_prototypes();
}

Matrix SyntheticTimit::build_prototypes() const {
  // Prototypes are a function of the corpus seed only, not of the stream
  // position, so train and test share the same acoustic space.
  Rng rng(config_.seed ^ 0x9E3779B97F4A7C15ULL);
  Matrix prototypes(kNumSurfacePhones, config_.feature_dim);
  fill_normal(prototypes.span(), rng, 1.0F);
  // Surface phones that fold together get correlated prototypes (their
  // separation is what the folding throws away), which makes the task
  // realistically confusable.
  const auto& phones = surface_phones();
  std::vector<int> seen_first(kNumFoldedPhones, -1);
  for (std::size_t i = 0; i < phones.size(); ++i) {
    const std::uint16_t folded = phones[i].folded;
    if (seen_first[folded] < 0) {
      seen_first[folded] = static_cast<int>(i);
      continue;
    }
    const auto anchor =
        prototypes.row(static_cast<std::size_t>(seen_first[folded]));
    auto row = prototypes.row(i);
    for (std::size_t d = 0; d < row.size(); ++d) {
      row[d] = 0.8F * anchor[d] + 0.2F * row[d];
    }
  }
  return prototypes;
}

std::vector<double> SyntheticTimit::transition_weights(
    std::size_t from_phone) const {
  const auto& phones = surface_phones();
  std::vector<double> weights(phones.size());
  for (std::size_t to = 0; to < phones.size(); ++to) {
    double w = class_affinity(phones[from_phone].phone_class,
                              phones[to].phone_class);
    if (to == from_phone) w *= 0.05;  // discourage immediate repeats
    weights[to] = w;
  }
  return weights;
}

std::vector<std::size_t> SyntheticTimit::sample_surface_sequence(
    Rng& rng) const {
  const std::size_t h_sharp = surface_phone_id("h#");
  const std::size_t count =
      config_.min_phones +
      rng.next_below(config_.max_phones - config_.min_phones + 1);
  std::vector<std::size_t> seq;
  seq.reserve(count + 2);
  seq.push_back(h_sharp);
  std::size_t current = h_sharp;
  for (std::size_t i = 0; i < count; ++i) {
    current = rng.categorical(transition_weights(current));
    seq.push_back(current);
  }
  seq.push_back(h_sharp);
  return seq;
}

LabeledSequence SyntheticTimit::make_utterance(
    const std::vector<std::size_t>& surface_seq, Rng& rng) const {
  RT_REQUIRE(!surface_seq.empty(), "empty surface sequence");
  const auto& phones = surface_phones();

  // Per-phone durations in frames.
  std::vector<std::size_t> durations(surface_seq.size());
  for (std::size_t p = 0; p < surface_seq.size(); ++p) {
    durations[p] = config_.min_frames_per_phone +
                   rng.next_below(config_.max_frames_per_phone -
                                  config_.min_frames_per_phone + 1);
  }

  LabeledSequence utt;

  if (config_.mode == FeatureMode::kWaveform) {
    // Render audio and run the true MFCC pipeline; frame labels come from
    // the phone owning each frame's center sample.
    const std::size_t shift = mfcc_.config().frame_shift;
    const std::size_t frame_len = mfcc_.config().frame_length;
    std::vector<std::size_t> durations_samples(durations.size());
    for (std::size_t p = 0; p < durations.size(); ++p) {
      durations_samples[p] = durations[p] * shift;
    }
    // Pad the tail so the last frames have full windows.
    durations_samples.back() += frame_len;
    const std::vector<float> waveform =
        synth_.render_sequence(surface_seq, durations_samples, rng);
    utt.features = mfcc_.extract(waveform);

    std::vector<std::size_t> phone_end_sample(durations_samples.size());
    std::size_t acc = 0;
    for (std::size_t p = 0; p < durations_samples.size(); ++p) {
      acc += durations_samples[p];
      phone_end_sample[p] = acc;
    }
    utt.labels.resize(utt.features.rows());
    std::size_t phone_index = 0;
    for (std::size_t t = 0; t < utt.labels.size(); ++t) {
      const std::size_t center = t * shift + frame_len / 2;
      while (phone_index + 1 < phone_end_sample.size() &&
             center >= phone_end_sample[phone_index]) {
        ++phone_index;
      }
      utt.labels[t] = phones[surface_seq[phone_index]].folded;
    }
  } else {
    // Direct features: prototype + AR(1) noise, with boundary blending.
    std::size_t total_frames = 0;
    for (const std::size_t d : durations) total_frames += d;
    utt.features = Matrix(total_frames, config_.feature_dim);
    utt.labels.resize(total_frames);

    Vector noise(config_.feature_dim, 0.0F);
    const float ar = static_cast<float>(config_.ar_coefficient);
    const float noise_scale =
        static_cast<float>(config_.feature_noise) *
        std::sqrt(1.0F - ar * ar);  // keeps stationary variance constant
    std::size_t t = 0;
    for (std::size_t p = 0; p < surface_seq.size(); ++p) {
      const auto proto = prototypes_.row(surface_seq[p]);
      for (std::size_t f = 0; f < durations[p]; ++f, ++t) {
        auto frame = utt.features.row(t);
        // Boundary coarticulation: first/last frame of a phone leans
        // toward the neighbouring phone's prototype.
        double blend = 0.0;
        std::size_t neighbor = p;
        if (f == 0 && p > 0) {
          blend = config_.coarticulation * 0.5;
          neighbor = p - 1;
        } else if (f + 1 == durations[p] && p + 1 < surface_seq.size()) {
          blend = config_.coarticulation * 0.5;
          neighbor = p + 1;
        }
        const auto other = prototypes_.row(surface_seq[neighbor]);
        for (std::size_t d = 0; d < frame.size(); ++d) {
          noise[d] = ar * noise[d] + noise_scale * rng.normal();
          const float base = static_cast<float>(
              (1.0 - blend) * static_cast<double>(proto[d]) +
              blend * static_cast<double>(other[d]));
          frame[d] = base + noise[d];
        }
        utt.labels[t] = phones[surface_seq[p]].folded;
      }
    }
    RT_ASSERT(t == total_frames, "frame accounting mismatch");
  }

  utt.phones = collapse_sequence(utt.labels);
  return utt;
}

Corpus SyntheticTimit::generate() const {
  Rng rng(config_.seed);
  Corpus corpus;
  corpus.feature_dim = config_.mode == FeatureMode::kWaveform
                           ? mfcc_.feature_dim()
                           : config_.feature_dim;
  corpus.train.reserve(config_.num_train_utterances);
  corpus.test.reserve(config_.num_test_utterances);
  for (std::size_t i = 0; i < config_.num_train_utterances; ++i) {
    corpus.train.push_back(make_utterance(sample_surface_sequence(rng), rng));
  }
  for (std::size_t i = 0; i < config_.num_test_utterances; ++i) {
    corpus.test.push_back(make_utterance(sample_surface_sequence(rng), rng));
  }
  return corpus;
}

std::vector<std::uint16_t> collapse_sequence(
    const std::vector<std::uint16_t>& frames) {
  std::vector<std::uint16_t> collapsed;
  for (const std::uint16_t label : frames) {
    if (collapsed.empty() || collapsed.back() != label) {
      collapsed.push_back(label);
    }
  }
  return collapsed;
}

}  // namespace rtmobile::speech
