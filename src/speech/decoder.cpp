#include "speech/decoder.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace rtmobile::speech {

void DecoderConfig::validate() const {
  RT_REQUIRE(smooth_window % 2 == 1,
             "DecoderConfig.smooth_window must be odd (the majority window "
             "needs a center frame; 1 disables smoothing), got " +
                 std::to_string(smooth_window));
  RT_REQUIRE(min_run >= 1,
             "DecoderConfig.min_run must be >= 1 (1 keeps every run; 0 "
             "would silently behave like 1)");
}

std::vector<std::uint16_t> frame_argmax(const Matrix& logits) {
  std::vector<std::uint16_t> labels(logits.rows());
  for (std::size_t t = 0; t < logits.rows(); ++t) {
    labels[t] = static_cast<std::uint16_t>(argmax(logits.row(t)));
  }
  return labels;
}

std::uint16_t majority_vote(std::span<const std::uint16_t> frames,
                            std::size_t lo, std::size_t hi,
                            std::uint16_t center) {
  RT_REQUIRE(lo < hi && hi <= frames.size(),
             "majority_vote: window out of range");
  std::map<std::uint16_t, std::size_t> votes;
  for (std::size_t i = lo; i < hi; ++i) ++votes[frames[i]];
  // Majority with tie preference for the center frame's label; remaining
  // ties break toward the smallest label (ascending map order + strict
  // improvement).
  std::uint16_t best = center;
  std::size_t best_votes = votes[center];
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best = label;
      best_votes = count;
    }
  }
  return best;
}

std::vector<std::uint16_t> majority_smooth(
    const std::vector<std::uint16_t>& frames, std::size_t window) {
  RT_REQUIRE(window % 2 == 1, "smoothing window must be odd");
  if (window <= 1 || frames.size() <= 2) return frames;
  const std::size_t half = window / 2;
  std::vector<std::uint16_t> smoothed(frames.size());
  for (std::size_t t = 0; t < frames.size(); ++t) {
    const std::size_t lo = t >= half ? t - half : 0;
    const std::size_t hi = std::min(frames.size(), t + half + 1);
    smoothed[t] = majority_vote(frames, lo, hi, frames[t]);
  }
  return smoothed;
}

std::vector<std::uint16_t> collapse_runs(
    const std::vector<std::uint16_t>& frames, std::size_t min_run) {
  RT_REQUIRE(min_run >= 1, "min_run must be at least 1");
  std::vector<std::uint16_t> collapsed;
  std::size_t t = 0;
  while (t < frames.size()) {
    std::size_t end = t;
    while (end < frames.size() && frames[end] == frames[t]) ++end;
    const std::size_t run = end - t;
    if (run >= min_run &&
        (collapsed.empty() || collapsed.back() != frames[t])) {
      collapsed.push_back(frames[t]);
    }
    t = end;
  }
  // Degenerate case: every run was too short — fall back to plain collapse
  // so the decode is never empty for a non-empty input.
  if (collapsed.empty() && !frames.empty()) {
    return collapse_runs(frames, 1);
  }
  return collapsed;
}

std::vector<std::uint16_t> greedy_decode(const Matrix& logits,
                                         const DecoderConfig& config) {
  config.validate();
  return collapse_runs(majority_smooth(frame_argmax(logits),
                                       config.smooth_window),
                       config.min_run);
}

std::vector<std::uint16_t> viterbi_path(const Matrix& logits,
                                        double switch_penalty) {
  RT_REQUIRE(switch_penalty >= 0.0, "switch penalty must be non-negative");
  const std::size_t frames = logits.rows();
  const std::size_t classes = logits.cols();
  RT_REQUIRE(frames > 0 && classes > 0, "viterbi: empty logits");

  // score[c] = best log-score of any path ending in class c at frame t.
  std::vector<double> score(classes);
  std::vector<double> next_score(classes);
  std::vector<float> log_probs(classes);
  // backpointer[t][c] = previous class on the best path.
  std::vector<std::uint16_t> backpointers(frames * classes);

  log_softmax(logits.row(0), log_probs);
  for (std::size_t c = 0; c < classes; ++c) {
    score[c] = static_cast<double>(log_probs[c]);
  }

  for (std::size_t t = 1; t < frames; ++t) {
    // Best predecessor overall (for switch transitions) computed once:
    // switching into c always prefers the globally best previous state
    // (ties broken by index, excluding c handled below).
    std::size_t best_prev = 0;
    std::size_t second_prev = classes > 1 ? 1 : 0;
    if (classes > 1 && score[second_prev] > score[best_prev]) {
      std::swap(best_prev, second_prev);
    }
    for (std::size_t c = 2; c < classes; ++c) {
      if (score[c] > score[best_prev]) {
        second_prev = best_prev;
        best_prev = c;
      } else if (score[c] > score[second_prev]) {
        second_prev = c;
      }
    }

    log_softmax(logits.row(t), log_probs);
    for (std::size_t c = 0; c < classes; ++c) {
      const double stay = score[c];
      const std::size_t switch_from = c == best_prev ? second_prev : best_prev;
      const double switched = score[switch_from] - switch_penalty;
      if (stay >= switched) {
        next_score[c] = stay + static_cast<double>(log_probs[c]);
        backpointers[t * classes + c] = static_cast<std::uint16_t>(c);
      } else {
        next_score[c] = switched + static_cast<double>(log_probs[c]);
        backpointers[t * classes + c] =
            static_cast<std::uint16_t>(switch_from);
      }
    }
    std::swap(score, next_score);
  }

  // Backtrack from the best final state.
  std::vector<std::uint16_t> path(frames);
  std::size_t best_final = 0;
  for (std::size_t c = 1; c < classes; ++c) {
    if (score[c] > score[best_final]) best_final = c;
  }
  path[frames - 1] = static_cast<std::uint16_t>(best_final);
  for (std::size_t t = frames - 1; t > 0; --t) {
    path[t - 1] = backpointers[t * classes + path[t]];
  }
  return path;
}

std::vector<std::uint16_t> viterbi_decode(const Matrix& logits,
                                          double switch_penalty) {
  return collapse_runs(viterbi_path(logits, switch_penalty), 1);
}

}  // namespace rtmobile::speech
