#include "speech/wav.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace rtmobile::speech {
namespace {

void write_u32le(std::ostream& os, std::uint32_t value) {
  const std::array<char, 4> bytes = {
      static_cast<char>(value & 0xFF),
      static_cast<char>((value >> 8) & 0xFF),
      static_cast<char>((value >> 16) & 0xFF),
      static_cast<char>((value >> 24) & 0xFF)};
  os.write(bytes.data(), bytes.size());
}

void write_u16le(std::ostream& os, std::uint16_t value) {
  const std::array<char, 2> bytes = {
      static_cast<char>(value & 0xFF),
      static_cast<char>((value >> 8) & 0xFF)};
  os.write(bytes.data(), bytes.size());
}

[[nodiscard]] std::uint32_t read_u32le(std::istream& is) {
  std::array<unsigned char, 4> bytes{};
  is.read(reinterpret_cast<char*>(bytes.data()), bytes.size());
  RT_CHECK(is.good(), "truncated WAV (u32)");
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

[[nodiscard]] std::uint16_t read_u16le(std::istream& is) {
  std::array<unsigned char, 2> bytes{};
  is.read(reinterpret_cast<char*>(bytes.data()), bytes.size());
  RT_CHECK(is.good(), "truncated WAV (u16)");
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(bytes[0]) |
      (static_cast<std::uint16_t>(bytes[1]) << 8));
}

[[nodiscard]] std::string read_tag(std::istream& is) {
  std::array<char, 4> tag{};
  is.read(tag.data(), tag.size());
  RT_CHECK(is.good(), "truncated WAV (tag)");
  return std::string(tag.data(), tag.size());
}

}  // namespace

void write_wav(std::ostream& os, std::span<const float> samples,
               std::uint32_t sample_rate_hz) {
  RT_REQUIRE(sample_rate_hz > 0, "sample rate must be positive");
  const std::uint32_t data_bytes =
      static_cast<std::uint32_t>(samples.size() * 2);

  os.write("RIFF", 4);
  write_u32le(os, 36 + data_bytes);
  os.write("WAVE", 4);

  os.write("fmt ", 4);
  write_u32le(os, 16);                 // PCM fmt chunk size
  write_u16le(os, 1);                  // PCM
  write_u16le(os, 1);                  // mono
  write_u32le(os, sample_rate_hz);
  write_u32le(os, sample_rate_hz * 2); // byte rate
  write_u16le(os, 2);                  // block align
  write_u16le(os, 16);                 // bits per sample

  os.write("data", 4);
  write_u32le(os, data_bytes);
  for (const float sample : samples) {
    const float clamped = std::clamp(sample, -1.0F, 1.0F);
    const auto pcm = static_cast<std::int16_t>(
        std::lround(clamped * 32767.0F));
    write_u16le(os, static_cast<std::uint16_t>(pcm));
  }
  RT_CHECK(os.good(), "failed writing WAV payload");
}

void save_wav(const std::string& path, std::span<const float> samples,
              std::uint32_t sample_rate_hz) {
  std::ofstream file(path, std::ios::binary);
  RT_CHECK(file.good(), "failed to open for write: " + path);
  write_wav(file, samples, sample_rate_hz);
}

WavData read_wav(std::istream& is) {
  RT_CHECK(read_tag(is) == "RIFF", "not a RIFF file");
  static_cast<void>(read_u32le(is));  // total RIFF size (unchecked)
  RT_CHECK(read_tag(is) == "WAVE", "not a WAVE file");

  WavData wav;
  bool have_format = false;
  for (;;) {
    const std::string tag = read_tag(is);
    const std::uint32_t chunk_size = read_u32le(is);
    if (tag == "fmt ") {
      RT_CHECK(chunk_size >= 16, "malformed fmt chunk");
      const std::uint16_t format = read_u16le(is);
      const std::uint16_t channels = read_u16le(is);
      wav.sample_rate_hz = read_u32le(is);
      static_cast<void>(read_u32le(is));  // byte rate
      static_cast<void>(read_u16le(is));  // block align
      const std::uint16_t bits = read_u16le(is);
      RT_CHECK(format == 1 && channels == 1 && bits == 16,
               "only 16-bit PCM mono WAV is supported");
      is.ignore(chunk_size - 16);
      have_format = true;
    } else if (tag == "data") {
      RT_CHECK(have_format, "data chunk before fmt chunk");
      const std::size_t count = chunk_size / 2;
      wav.samples.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        const auto pcm =
            static_cast<std::int16_t>(read_u16le(is));
        wav.samples[i] = static_cast<float>(pcm) / 32767.0F;
      }
      return wav;
    } else {
      is.ignore(chunk_size + (chunk_size & 1));  // skip unknown chunks
      RT_CHECK(is.good(), "truncated WAV (skipping chunk)");
    }
  }
}

WavData load_wav(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  RT_CHECK(file.good(), "failed to open for read: " + path);
  return read_wav(file);
}

}  // namespace rtmobile::speech
