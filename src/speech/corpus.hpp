// SyntheticTimit: the deterministic TIMIT-substitute corpus.
//
// TIMIT itself is LDC-licensed and unavailable offline, so experiments run
// on a synthetic phone corpus with the same task structure (DESIGN.md
// documents the substitution): 61 surface phones folded to 39 scoring
// classes, class-aware bigram phonotactics (closures before stops, CV
// alternation, utterances bracketed by silence), per-phone durations, and
// two feature modes:
//   direct   — per-phone 39-dim prototype + AR(1) noise + boundary
//              coarticulation blending (fast; used for training sweeps);
//   waveform — formant-synthesized audio rendered through the real MFCC
//              front end (slower; used by the end-to-end example/tests).
#pragma once

#include <cstdint>
#include <vector>

#include "speech/mfcc.hpp"
#include "speech/phones.hpp"
#include "speech/synth.hpp"
#include "tensor/matrix.hpp"
#include "train/types.hpp"
#include "util/rng.hpp"

namespace rtmobile::speech {

enum class FeatureMode : std::uint8_t {
  kDirect,    // prototype features, no audio
  kWaveform,  // synthesize audio, extract MFCCs
};

struct CorpusConfig {
  std::size_t num_train_utterances = 96;
  std::size_t num_test_utterances = 32;
  std::size_t min_phones = 8;
  std::size_t max_phones = 18;
  std::size_t min_frames_per_phone = 3;
  std::size_t max_frames_per_phone = 9;
  double feature_noise = 0.45;   // direct mode: per-frame noise stddev
  double coarticulation = 0.5;   // direct mode: boundary blend strength
  double ar_coefficient = 0.5;   // direct mode: AR(1) noise correlation
  std::uint64_t seed = 42;
  FeatureMode mode = FeatureMode::kDirect;
  std::size_t feature_dim = 39;  // direct mode feature dimension
};

struct Corpus {
  std::vector<LabeledSequence> train;
  std::vector<LabeledSequence> test;
  std::size_t feature_dim = 0;
  std::size_t num_classes = kNumFoldedPhones;
};

class SyntheticTimit {
 public:
  explicit SyntheticTimit(const CorpusConfig& config = CorpusConfig{});

  [[nodiscard]] const CorpusConfig& config() const { return config_; }

  /// Generates the full corpus (train + test) deterministically from the
  /// config seed.
  [[nodiscard]] Corpus generate() const;

  /// Samples one surface-phone sequence (starts and ends with "h#",
  /// class-aware bigram interior). Exposed for tests.
  [[nodiscard]] std::vector<std::size_t> sample_surface_sequence(
      Rng& rng) const;

  /// Direct-mode prototype features: [61 x feature_dim], deterministic.
  [[nodiscard]] const Matrix& phone_prototypes() const {
    return prototypes_;
  }

  /// Builds one utterance from a surface sequence (used by generate();
  /// exposed for tests of labeling invariants).
  [[nodiscard]] LabeledSequence make_utterance(
      const std::vector<std::size_t>& surface_seq, Rng& rng) const;

 private:
  [[nodiscard]] Matrix build_prototypes() const;
  [[nodiscard]] std::vector<double> transition_weights(
      std::size_t from_phone) const;

  CorpusConfig config_;
  Matrix prototypes_;  // [61 x feature_dim]
  Synthesizer synth_;
  MfccExtractor mfcc_;
};

/// Collapses consecutive duplicate folded ids ("h# h# ey ey t" -> "h# ey t").
[[nodiscard]] std::vector<std::uint16_t> collapse_sequence(
    const std::vector<std::uint16_t>& frames);

}  // namespace rtmobile::speech
