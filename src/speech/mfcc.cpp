#include "speech/mfcc.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "sparse/fft.hpp"
#include "util/check.hpp"

namespace rtmobile::speech {

double hz_to_mel(double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); }

double mel_to_hz(double mel) {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

MelFilterBank::MelFilterBank(const MfccConfig& config)
    : num_bins_(config.fft_size / 2 + 1) {
  RT_REQUIRE(config.num_mel_filters >= 2, "need at least two mel filters");
  RT_REQUIRE(config.high_freq_hz <= config.sample_rate_hz / 2.0,
             "high frequency above Nyquist");
  RT_REQUIRE(config.low_freq_hz >= 0.0 &&
                 config.low_freq_hz < config.high_freq_hz,
             "invalid mel frequency range");

  const double mel_lo = hz_to_mel(config.low_freq_hz);
  const double mel_hi = hz_to_mel(config.high_freq_hz);
  const std::size_t n = config.num_mel_filters;
  // n + 2 equally-spaced mel points define n triangles.
  std::vector<double> edges_hz(n + 2);
  for (std::size_t i = 0; i < edges_hz.size(); ++i) {
    const double mel = mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                                    static_cast<double>(n + 1);
    edges_hz[i] = mel_to_hz(mel);
  }
  const double hz_per_bin =
      config.sample_rate_hz / static_cast<double>(config.fft_size);

  filters_.resize(n);
  for (std::size_t f = 0; f < n; ++f) {
    auto& weights = filters_[f];
    weights.assign(num_bins_, 0.0F);
    const double left = edges_hz[f];
    const double center = edges_hz[f + 1];
    const double right = edges_hz[f + 2];
    for (std::size_t bin = 0; bin < num_bins_; ++bin) {
      const double hz = static_cast<double>(bin) * hz_per_bin;
      if (hz <= left || hz >= right) continue;
      const double w = hz <= center ? (hz - left) / (center - left)
                                    : (right - hz) / (right - center);
      weights[bin] = static_cast<float>(w);
    }
  }
}

void MelFilterBank::apply(std::span<const float> power_spectrum,
                          std::span<float> energies) const {
  RT_REQUIRE(power_spectrum.size() == num_bins_,
             "power spectrum bin count mismatch");
  RT_REQUIRE(energies.size() == filters_.size(),
             "mel energies must hold num_filters values");
  for (std::size_t f = 0; f < filters_.size(); ++f) {
    double acc = 0.0;
    const auto& weights = filters_[f];
    for (std::size_t bin = 0; bin < num_bins_; ++bin) {
      acc += static_cast<double>(weights[bin]) *
             static_cast<double>(power_spectrum[bin]);
    }
    energies[f] = static_cast<float>(acc);
  }
}

std::span<const float> MelFilterBank::filter(std::size_t f) const {
  RT_REQUIRE(f < filters_.size(), "filter index out of range");
  return {filters_[f].data(), filters_[f].size()};
}

MfccExtractor::MfccExtractor(const MfccConfig& config)
    : config_(config), mel_bank_(config) {
  RT_REQUIRE(config.frame_length > 0 && config.frame_shift > 0,
             "frame geometry must be positive");
  RT_REQUIRE(is_power_of_two(config.fft_size) &&
                 config.fft_size >= config.frame_length,
             "fft_size must be a power of two >= frame_length");
  RT_REQUIRE(config.num_cepstra <= config.num_mel_filters,
             "cannot keep more cepstra than mel filters");

  window_.resize(config.frame_length);
  for (std::size_t i = 0; i < window_.size(); ++i) {
    window_[i] = static_cast<float>(
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                               static_cast<double>(i) /
                               static_cast<double>(window_.size() - 1)));
  }

  // Orthonormal DCT-II rows: dct_[c][m].
  const std::size_t m_count = config.num_mel_filters;
  dct_.resize(config.num_cepstra * m_count);
  for (std::size_t c = 0; c < config.num_cepstra; ++c) {
    const double scale = c == 0 ? std::sqrt(1.0 / static_cast<double>(m_count))
                                : std::sqrt(2.0 / static_cast<double>(m_count));
    for (std::size_t m = 0; m < m_count; ++m) {
      dct_[c * m_count + m] = static_cast<float>(
          scale * std::cos(std::numbers::pi * static_cast<double>(c) *
                           (static_cast<double>(m) + 0.5) /
                           static_cast<double>(m_count)));
    }
  }
}

std::size_t MfccExtractor::feature_dim() const {
  return config_.add_deltas ? config_.num_cepstra * 3 : config_.num_cepstra;
}

std::size_t MfccExtractor::frame_count(std::size_t num_samples) const {
  if (num_samples < config_.frame_length) return 0;
  return 1 + (num_samples - config_.frame_length) / config_.frame_shift;
}

void MfccExtractor::extract_frame(std::span<const float> samples,
                                  float prev_sample,
                                  std::span<float> cepstra,
                                  FrameScratch& scratch) const {
  extract_frame_impl(samples, prev_sample, cepstra, scratch.frame,
                     scratch.fft, scratch.power, scratch.mel);
}

void MfccExtractor::extract_frame_impl(std::span<const float> samples,
                                       float prev_sample,
                                       std::span<float> cepstra,
                                       std::span<float> frame,
                                       std::span<Complex> fft,
                                       std::span<float> power,
                                       std::span<float> mel) const {
  RT_REQUIRE(samples.size() == config_.frame_length,
             "extract_frame: window must be frame_length samples");
  RT_REQUIRE(cepstra.size() == config_.num_cepstra,
             "extract_frame: output must hold num_cepstra values");
  RT_REQUIRE(frame.size() == config_.frame_length &&
                 fft.size() == config_.fft_size &&
                 power.size() == config_.fft_size / 2 + 1 &&
                 mel.size() == config_.num_mel_filters,
             "extract_frame: scratch sized for a different config");

  // Pre-emphasis + Hamming window.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const float previous = i > 0 ? samples[i - 1] : prev_sample;
    frame[i] = (samples[i] -
                static_cast<float>(config_.preemphasis) * previous) *
               window_[i];
  }
  rtmobile::power_spectrum(frame, config_.fft_size, power, fft);
  mel_bank_.apply(power, mel);
  for (float& e : mel) {
    e = std::log(std::max(e, 1e-10F));  // floor avoids log(0)
  }
  // DCT-II to cepstra.
  for (std::size_t c = 0; c < config_.num_cepstra; ++c) {
    double acc = 0.0;
    const float* row = dct_.data() + c * config_.num_mel_filters;
    for (std::size_t m = 0; m < mel.size(); ++m) {
      acc += static_cast<double>(row[m]) * static_cast<double>(mel[m]);
    }
    cepstra[c] = static_cast<float>(acc);
  }
}

Matrix MfccExtractor::extract(std::span<const float> waveform) const {
  const std::size_t frames = frame_count(waveform.size());
  RT_REQUIRE(frames > 0, "waveform shorter than one frame");

  Matrix cepstra(frames, config_.num_cepstra);
  FrameScratch scratch(config_);
  for (std::size_t t = 0; t < frames; ++t) {
    const std::size_t start = t * config_.frame_shift;
    const float prev = start > 0 ? waveform[start - 1] : 0.0F;
    extract_frame(waveform.subspan(start, config_.frame_length), prev,
                  cepstra.row(t), scratch);
  }

  if (config_.cepstral_mean_norm) cepstral_mean_normalize(cepstra);
  return config_.add_deltas ? add_delta_features(cepstra) : cepstra;
}

Matrix add_delta_features(const Matrix& base) {
  const std::size_t frames = base.rows();
  const std::size_t dim = base.cols();
  RT_REQUIRE(frames > 0 && dim > 0, "empty feature matrix");
  Matrix out(frames, dim * 3);

  // Standard regression deltas with window N=2:
  // d_t = sum_n n (x_{t+n} - x_{t-n}) / (2 sum_n n^2), edges clamped.
  constexpr int kWindow = kDeltaRegressionWindow;
  constexpr float kDenominator = kDeltaRegressionDenominator;
  const auto clamped_row = [&](const Matrix& m, std::ptrdiff_t t) {
    const std::ptrdiff_t last = static_cast<std::ptrdiff_t>(frames) - 1;
    return m.row(static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(t, 0,
                                                                     last)));
  };

  Matrix delta(frames, dim);
  for (std::size_t t = 0; t < frames; ++t) {
    for (std::size_t d = 0; d < dim; ++d) {
      float acc = 0.0F;
      for (int n = 1; n <= kWindow; ++n) {
        acc += static_cast<float>(n) *
               (clamped_row(base, static_cast<std::ptrdiff_t>(t) + n)[d] -
                clamped_row(base, static_cast<std::ptrdiff_t>(t) - n)[d]);
      }
      delta(t, d) = acc / kDenominator;
    }
  }
  Matrix delta2(frames, dim);
  for (std::size_t t = 0; t < frames; ++t) {
    for (std::size_t d = 0; d < dim; ++d) {
      float acc = 0.0F;
      for (int n = 1; n <= kWindow; ++n) {
        acc += static_cast<float>(n) *
               (clamped_row(delta, static_cast<std::ptrdiff_t>(t) + n)[d] -
                clamped_row(delta, static_cast<std::ptrdiff_t>(t) - n)[d]);
      }
      delta2(t, d) = acc / kDenominator;
    }
  }

  for (std::size_t t = 0; t < frames; ++t) {
    for (std::size_t d = 0; d < dim; ++d) {
      out(t, d) = base(t, d);
      out(t, dim + d) = delta(t, d);
      out(t, 2 * dim + d) = delta2(t, d);
    }
  }
  return out;
}

void cepstral_mean_normalize(Matrix& features) {
  const std::size_t frames = features.rows();
  if (frames == 0) return;
  for (std::size_t d = 0; d < features.cols(); ++d) {
    double mean = 0.0;
    for (std::size_t t = 0; t < frames; ++t) {
      mean += static_cast<double>(features(t, d));
    }
    mean /= static_cast<double>(frames);
    for (std::size_t t = 0; t < frames; ++t) {
      features(t, d) -= static_cast<float>(mean);
    }
  }
}

}  // namespace rtmobile::speech
