// Parametric phone waveform synthesizer.
//
// Generates 16 kHz waveforms for surface-phone sequences so the MFCC front
// end runs on genuinely spectral data. The synthesis is a classic
// source-filter caricature, deterministic per seed:
//   vowels/semivowels: sum of three formant sinusoids on a pitch-modulated
//     harmonic source, formants drawn per phone from a fixed table;
//   nasals: low formant + damped upper structure;
//   fricatives/affricates: band-shaped noise (center/width per phone);
//   stops: closure silence then a short broadband burst;
//   silence/closures: low-amplitude noise floor.
// Adjacent phones are cross-faded to model coarticulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "speech/phones.hpp"
#include "util/rng.hpp"

namespace rtmobile::speech {

struct SynthConfig {
  double sample_rate_hz = 16000.0;
  double pitch_hz = 120.0;          // nominal F0
  double pitch_jitter = 0.08;       // relative F0 wobble
  double noise_floor = 0.01;        // silence amplitude
  double coarticulation_ms = 12.0;  // cross-fade between phones
  double amplitude = 0.35;
};

/// Per-phone spectral recipe used by the synthesizer.
struct PhoneAcoustics {
  double f1_hz = 0.0, f2_hz = 0.0, f3_hz = 0.0;  // formants (voiced phones)
  double noise_center_hz = 0.0;                  // fricative band center
  double noise_width_hz = 0.0;                   // fricative band width
  double voicing = 0.0;                          // [0,1] harmonic fraction
  double level = 1.0;                            // relative amplitude
};

/// The fixed acoustic table for all 61 surface phones (deterministic).
[[nodiscard]] const std::vector<PhoneAcoustics>& phone_acoustics();

class Synthesizer {
 public:
  explicit Synthesizer(const SynthConfig& config = SynthConfig{});

  /// Renders one surface phone for `num_samples` samples into `out`
  /// (appended). `rng` drives pitch jitter and noise.
  void render_phone(std::size_t surface_phone, std::size_t num_samples,
                    Rng& rng, std::vector<float>& out) const;

  /// Renders a phone sequence with per-phone sample durations and
  /// coarticulation cross-fades. Returns the waveform.
  [[nodiscard]] std::vector<float> render_sequence(
      std::span<const std::size_t> surface_phones,
      std::span<const std::size_t> durations_samples, Rng& rng) const;

  [[nodiscard]] const SynthConfig& config() const { return config_; }

 private:
  SynthConfig config_;
};

// --------------------------------------------- repeat-heavy traffic model

/// Zipf(s) sampler over ranks 0..n-1: rank r is drawn with probability
/// proportional to 1/(r+1)^s. Sampling is inverse-CDF over precomputed
/// cumulative weights (O(log n) per draw), deterministic given the Rng.
/// s = 0 is uniform; s around 1 is the classic repeat-heavy web/IVR
/// shape where a handful of utterances dominate the traffic.
class ZipfSampler {
 public:
  /// `n` must be positive; `skew` (s) must be >= 0.
  ZipfSampler(std::size_t n, double skew);

  /// Draws one rank in [0, size()).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// Exact probability of drawing `rank`.
  [[nodiscard]] double probability(std::size_t rank) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double skew() const { return skew_; }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
  double skew_ = 0.0;
};

/// The traffic model bench_cache and the cache tests replay: a fixed
/// pool of synthesized utterances hit with Zipf-distributed repetition.
struct RepeatTrafficConfig {
  std::size_t distinct_utterances = 16;  // pool size (Zipf support)
  double skew = 1.1;                     // Zipf s; 0 = uniform traffic
  std::size_t phones_per_utterance = 6;
  std::size_t samples_per_phone = 1200;  // 75 ms at 16 kHz
  std::uint64_t seed = 0x5EEDULL;        // drives pool AND draw order
  SynthConfig synth;
};

/// Seeded generator of repeat-heavy traffic: synthesizes a pool of
/// `distinct_utterances` random-phone waveforms up front (each rendered
/// from a seed derived only from `seed` and its rank, so two generators
/// with equal configs own bitwise-identical pools), then deals ranks
/// from a ZipfSampler. Rank 0 is the hottest utterance.
class UtteranceRepeatGenerator {
 public:
  explicit UtteranceRepeatGenerator(const RepeatTrafficConfig& config);

  /// Draws the next traffic item's rank (advances the draw stream).
  [[nodiscard]] std::size_t next_rank();
  /// Convenience: draws a rank and returns its pooled waveform.
  [[nodiscard]] const std::vector<float>& next_wave();

  /// The pooled waveform for a rank (stable across the generator's life).
  [[nodiscard]] const std::vector<float>& utterance(std::size_t rank) const;
  [[nodiscard]] std::size_t pool_size() const { return pool_.size(); }
  [[nodiscard]] const ZipfSampler& zipf() const { return zipf_; }
  [[nodiscard]] const RepeatTrafficConfig& config() const { return config_; }

 private:
  RepeatTrafficConfig config_;
  ZipfSampler zipf_;
  Rng draw_rng_;
  std::vector<std::vector<float>> pool_;
};

}  // namespace rtmobile::speech
