// Parametric phone waveform synthesizer.
//
// Generates 16 kHz waveforms for surface-phone sequences so the MFCC front
// end runs on genuinely spectral data. The synthesis is a classic
// source-filter caricature, deterministic per seed:
//   vowels/semivowels: sum of three formant sinusoids on a pitch-modulated
//     harmonic source, formants drawn per phone from a fixed table;
//   nasals: low formant + damped upper structure;
//   fricatives/affricates: band-shaped noise (center/width per phone);
//   stops: closure silence then a short broadband burst;
//   silence/closures: low-amplitude noise floor.
// Adjacent phones are cross-faded to model coarticulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "speech/phones.hpp"
#include "util/rng.hpp"

namespace rtmobile::speech {

struct SynthConfig {
  double sample_rate_hz = 16000.0;
  double pitch_hz = 120.0;          // nominal F0
  double pitch_jitter = 0.08;       // relative F0 wobble
  double noise_floor = 0.01;        // silence amplitude
  double coarticulation_ms = 12.0;  // cross-fade between phones
  double amplitude = 0.35;
};

/// Per-phone spectral recipe used by the synthesizer.
struct PhoneAcoustics {
  double f1_hz = 0.0, f2_hz = 0.0, f3_hz = 0.0;  // formants (voiced phones)
  double noise_center_hz = 0.0;                  // fricative band center
  double noise_width_hz = 0.0;                   // fricative band width
  double voicing = 0.0;                          // [0,1] harmonic fraction
  double level = 1.0;                            // relative amplitude
};

/// The fixed acoustic table for all 61 surface phones (deterministic).
[[nodiscard]] const std::vector<PhoneAcoustics>& phone_acoustics();

class Synthesizer {
 public:
  explicit Synthesizer(const SynthConfig& config = SynthConfig{});

  /// Renders one surface phone for `num_samples` samples into `out`
  /// (appended). `rng` drives pitch jitter and noise.
  void render_phone(std::size_t surface_phone, std::size_t num_samples,
                    Rng& rng, std::vector<float>& out) const;

  /// Renders a phone sequence with per-phone sample durations and
  /// coarticulation cross-fades. Returns the waveform.
  [[nodiscard]] std::vector<float> render_sequence(
      std::span<const std::size_t> surface_phones,
      std::span<const std::size_t> durations_samples, Rng& rng) const;

  [[nodiscard]] const SynthConfig& config() const { return config_; }

 private:
  SynthConfig config_;
};

}  // namespace rtmobile::speech
