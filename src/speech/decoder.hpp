// Greedy framewise phone decoder.
//
// Mirrors the scoring path of a framewise hybrid system: per-frame argmax,
// optional majority smoothing over a small window, run-length collapse, and
// optional suppression of very short runs (spurious single-frame phones).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace rtmobile::speech {

struct DecoderConfig {
  std::size_t smooth_window = 3;  // odd; 1 disables smoothing
  std::size_t min_run = 2;        // drop decoded runs shorter than this

  /// Rejects configurations whose behavior would otherwise be undefined
  /// or silently surprising: an even smooth_window (the majority window
  /// must have a center frame) and min_run == 0 (which would read as
  /// "keep nothing" but actually behaves like 1). Throws
  /// std::invalid_argument naming the offending field. Called by every
  /// decode entry point that consumes the config.
  void validate() const;
};

/// Per-frame argmax labels of a logit matrix (T x C).
[[nodiscard]] std::vector<std::uint16_t> frame_argmax(const Matrix& logits);

/// The majority label over frames [lo, hi), with ties resolved in favor
/// of `center` (the window's center label) and then by smallest label.
/// This is the single vote rule shared by batch and streaming smoothing,
/// so the two can never drift apart.
[[nodiscard]] std::uint16_t majority_vote(
    std::span<const std::uint16_t> frames, std::size_t lo, std::size_t hi,
    std::uint16_t center);

/// Sliding-window majority vote (window must be odd; 1 = identity).
[[nodiscard]] std::vector<std::uint16_t> majority_smooth(
    const std::vector<std::uint16_t>& frames, std::size_t window);

/// Collapses runs, dropping runs shorter than `min_run` frames (short runs
/// are absorbed by their neighbours). min_run=1 keeps everything.
[[nodiscard]] std::vector<std::uint16_t> collapse_runs(
    const std::vector<std::uint16_t>& frames, std::size_t min_run);

/// Full decode: argmax -> smooth -> collapse.
[[nodiscard]] std::vector<std::uint16_t> greedy_decode(
    const Matrix& logits, const DecoderConfig& config = DecoderConfig{});

/// Frame-synchronous Viterbi decode over a minimal duration HMM: staying
/// in the current phone is free, switching phones costs `switch_penalty`
/// (in log-prob units). Larger penalties produce longer, cleaner runs —
/// the dynamic-programming upgrade of the greedy smoother. Returns the
/// collapsed phone sequence.
[[nodiscard]] std::vector<std::uint16_t> viterbi_decode(
    const Matrix& logits, double switch_penalty = 4.0);

/// The per-frame Viterbi state path before collapsing (for inspection).
[[nodiscard]] std::vector<std::uint16_t> viterbi_path(
    const Matrix& logits, double switch_penalty);

}  // namespace rtmobile::speech
