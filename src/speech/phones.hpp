// TIMIT phone inventory.
//
// TIMIT transcribes with 61 phones; standard practice (Lee & Hon 1989,
// followed by ESE, C-LSTM and the paper) folds them to 39 classes for
// scoring. The synthetic corpus generates surface sequences over the 61
// phones and labels frames with the folded 39 classes, exactly how a
// Kaldi-style TIMIT recipe behaves.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rtmobile::speech {

/// Number of surface phones (TIMIT transcription symbols).
inline constexpr std::size_t kNumSurfacePhones = 61;

/// Number of folded phone classes used for training/scoring.
inline constexpr std::size_t kNumFoldedPhones = 39;

/// Broad articulatory class, used by the waveform synthesizer to pick a
/// source model and by the corpus LM to build phonotactics.
enum class PhoneClass : std::uint8_t {
  kVowel,
  kSemivowel,  // glides + liquids
  kNasal,
  kFricative,
  kAffricate,
  kStop,
  kClosure,  // stop closures + epenthetic silence
  kSilence,
};

struct SurfacePhone {
  std::string_view name;     // TIMIT symbol, e.g. "ix"
  std::uint16_t folded;      // folded class id in [0, 39)
  PhoneClass phone_class;
};

/// The full 61-phone table in a fixed canonical order.
[[nodiscard]] const std::vector<SurfacePhone>& surface_phones();

/// Names of the 39 folded classes, indexed by folded id.
[[nodiscard]] const std::vector<std::string>& folded_phone_names();

/// Folded id of the silence class ("sil").
[[nodiscard]] std::uint16_t silence_phone();

/// Surface phone id by TIMIT symbol; throws for unknown symbols.
[[nodiscard]] std::size_t surface_phone_id(std::string_view name);

/// Folded id by class name; throws for unknown names.
[[nodiscard]] std::uint16_t folded_phone_id(std::string_view name);

}  // namespace rtmobile::speech
