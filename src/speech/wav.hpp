// Minimal RIFF/WAVE writer and reader (16-bit PCM mono).
//
// Lets users export the synthetic corpus audio for listening and feed
// external recordings through the MFCC front end. Only the subset needed
// for those two paths is implemented.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace rtmobile::speech {

/// Writes float samples in [-1, 1] (clamped) as 16-bit PCM mono.
void write_wav(std::ostream& os, std::span<const float> samples,
               std::uint32_t sample_rate_hz);

/// File convenience wrapper; throws std::runtime_error on I/O failure.
void save_wav(const std::string& path, std::span<const float> samples,
              std::uint32_t sample_rate_hz);

struct WavData {
  std::vector<float> samples;  // mono, [-1, 1]
  std::uint32_t sample_rate_hz = 0;
};

/// Reads a 16-bit PCM mono WAV written by write_wav (or compatible).
/// Throws std::runtime_error on malformed input.
[[nodiscard]] WavData read_wav(std::istream& is);

[[nodiscard]] WavData load_wav(const std::string& path);

}  // namespace rtmobile::speech
