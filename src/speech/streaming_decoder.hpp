// Incremental phone decoder over logit rows as the engine produces them.
//
// The batch decoders in speech/decoder.hpp need the whole utterance; this
// class consumes one logits row at a time and maintains a split
// hypothesis: a *stable* prefix that is mathematically final (no future
// frame can change it) plus an *unstable* partial tail (the best current
// guess over the frames still in flight). Every time either part changes
// it emits a StreamEvent, so a serving layer can surface partial
// hypotheses mid-stream — the product surface of a streaming recognizer.
//
// Finality guarantees, per mode:
//  - kGreedy: a frame's smoothed label is final once its full majority
//    window has arrived; a run is final once its length reaches min_run.
//    After finish(), stable() is bit-identical to greedy_decode() on the
//    same logits.
//  - kViterbi: the per-frame DP is identical to viterbi_path(); a path
//    prefix is final once every live backtrack converges onto it (the
//    classic path-convergence criterion, so the prefix lies on *every*
//    possible future best path). After finish(), stable() is
//    bit-identical to viterbi_decode() on the same logits.
//
// Events are a pure function of the logit-row stream: feeding the same
// rows in any chunking, on any engine or shard, produces the same event
// sequence — the identity the Recognizer conformance tests assert.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "speech/decoder.hpp"

namespace rtmobile::speech {

enum class DecodeMode : std::uint8_t {
  kNone,     // collect logits only (no decode state, no events)
  kGreedy,   // argmax -> majority smooth -> run collapse
  kViterbi,  // duration-penalty Viterbi (switch cost per phone change)
};

[[nodiscard]] const char* to_string(DecodeMode mode);

struct StreamingDecoderConfig {
  DecodeMode mode = DecodeMode::kGreedy;
  DecoderConfig greedy;         // kGreedy smoothing / min-run knobs
  double switch_penalty = 4.0;  // kViterbi phone-switch cost (log units)

  /// The logits-only marker config (no decoder is built): every other
  /// field keeps its default, so callers cannot drift from the struct.
  [[nodiscard]] static StreamingDecoderConfig none() {
    StreamingDecoderConfig config;
    config.mode = DecodeMode::kNone;
    return config;
  }
};

/// What a StreamEvent reports. The decoder emits only kHypothesis; the
/// serving runtime injects the control kinds when its overload policy
/// acts on a stream that fell behind real time.
enum class StreamEventKind : std::uint8_t {
  kHypothesis,  // stable/partial hypothesis update (the decoder's output)
  kDegraded,    // scheduler shed overdue queued frames; stream continues
  kRejected,    // scheduler terminated the stream (budget exceeded)
  kAborted,     // serving layer lost the stream (shard failure it could
                // not replay around); terminal, never silent
};

[[nodiscard]] const char* to_string(StreamEventKind kind);

/// One incremental hypothesis update. `stable` carries only the phones
/// finalized since the previous event (clients append them), `partial`
/// the full current unstable tail (clients replace it). The final event
/// of a stream has `is_final == true` and an empty partial: the
/// concatenation of every `stable` delta is then the whole hypothesis.
///
/// Control events (kDegraded/kRejected) carry `dropped_frames` — the
/// feature frames the scheduler discarded — and empty stable/partial, so
/// hypothesis reassembly over all events stays correct. A kRejected
/// event is terminal (`is_final == true`, emitted after the decoder's
/// own final hypothesis event).
struct StreamEvent {
  StreamEventKind kind = StreamEventKind::kHypothesis;
  std::size_t frames = 0;  // logit rows consumed when this was emitted
  std::size_t dropped_frames = 0;      // control kinds: frames shed
  std::vector<std::uint16_t> stable;   // newly finalized phones (delta)
  std::vector<std::uint16_t> partial;  // current unstable tail (whole)
  bool is_final = false;
};

[[nodiscard]] bool operator==(const StreamEvent& a, const StreamEvent& b);

class StreamingDecoder {
 public:
  /// `num_classes` is the logits row width. `config.mode` must not be
  /// kNone (a decoder that decodes nothing is a caller bug); the greedy
  /// config and switch penalty are validated here, at use.
  explicit StreamingDecoder(std::size_t num_classes,
                            const StreamingDecoderConfig& config = {});

  /// Consumes the next logits row (size num_classes) and updates the
  /// hypothesis, emitting an event if it changed.
  void push_row(std::span<const float> row);

  /// Marks end of stream: the remaining tail is finalized and the final
  /// event emitted. Idempotent. After this, push_row is rejected.
  void finish();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::size_t frames() const { return frames_; }
  [[nodiscard]] const StreamingDecoderConfig& config() const {
    return config_;
  }

  // ---- events ----
  [[nodiscard]] std::size_t pending_events() const { return events_.size(); }
  /// Appends all pending events to `out` (oldest first) and clears the
  /// internal queue. Returns how many were moved.
  std::size_t poll_events(std::vector<StreamEvent>& out);

  // ---- hypothesis views ----
  /// The finalized prefix (bit-identical to the batch decode once
  /// finished).
  [[nodiscard]] std::span<const std::uint16_t> stable() const {
    return stable_;
  }
  /// The current unstable tail.
  [[nodiscard]] const std::vector<std::uint16_t>& partial() const {
    return partial_;
  }
  /// stable() + partial(): the full current best hypothesis.
  [[nodiscard]] std::vector<std::uint16_t> hypothesis() const;

 private:
  void advance_greedy();
  void finish_greedy();
  /// Appends one finalized smoothed label to the run-collapse state.
  void collapse_push(std::uint16_t label);
  [[nodiscard]] std::vector<std::uint16_t> greedy_partial() const;

  void viterbi_step(std::span<const float> row);
  /// Detects backtrack convergence and finalizes the agreed path prefix.
  void viterbi_stabilize();
  /// Finalizes path frames [path_done_, upto] backtracking from `state`
  /// at frame `upto`.
  void viterbi_emit_range(std::size_t upto, std::uint16_t state);
  [[nodiscard]] std::vector<std::uint16_t> viterbi_partial() const;
  [[nodiscard]] std::uint16_t viterbi_best_state() const;

  /// Emits an event when the hypothesis changed (or the stream ended).
  void publish();

  std::size_t classes_ = 0;
  StreamingDecoderConfig config_;
  bool finished_ = false;
  std::size_t frames_ = 0;

  // Shared hypothesis state.
  std::vector<std::uint16_t> stable_;
  std::vector<std::uint16_t> partial_;
  std::vector<StreamEvent> events_;
  std::size_t published_stable_ = 0;  // stable_ size at the last event
  bool published_final_ = false;

  // Greedy state.
  std::vector<std::uint16_t> labels_;    // per-frame argmax so far
  std::vector<std::uint16_t> smoothed_;  // finalized smoothed prefix
  bool run_open_ = false;     // collapse: current run over smoothed_
  std::uint16_t run_label_ = 0;
  std::size_t run_length_ = 0;
  bool run_emitted_ = false;  // run already appended to (or absorbed by)
                              // stable_

  // Viterbi state (mirrors viterbi_path()'s DP exactly).
  std::vector<double> score_;
  std::vector<double> next_score_;
  std::vector<float> log_probs_;
  std::vector<std::uint16_t> backpointers_;  // frames x classes
  std::size_t path_done_ = 0;  // finalized path-frame count
  std::vector<std::uint16_t> converge_;      // backtrack work buffer
  std::vector<std::uint16_t> backtrack_;     // path-segment work buffer
  /// Convergence-scan schedule. A scan costs O(unstable x classes), so
  /// scanning every frame is quadratic over a stretch that refuses to
  /// converge (e.g. a huge switch penalty freezing every backtrack).
  /// Doubling the gap after each failed scan keeps total scan work
  /// linear in stream length (amortized O(classes) per frame) while a
  /// converging stream still stabilizes every frame.
  std::size_t stabilize_gap_ = 1;
  std::size_t next_stabilize_ = 0;  // frame count that triggers a scan
};

}  // namespace rtmobile::speech
