// Incremental MFCC extraction for streaming audio.
//
// Accepts audio in arbitrarily-sized chunks and emits feature frames that
// are bit-identical to MfccExtractor::extract() over the concatenated
// waveform: both paths share the same per-frame kernel
// (MfccExtractor::extract_frame), and Δ/ΔΔ features are emitted with a
// 4-frame lookahead so the regression windows see exactly the rows the
// batch path sees. Cepstral mean normalization is whole-utterance (not
// causal) and therefore unsupported here; configs must disable it.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "speech/mfcc.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile::speech {

class StreamingMfcc {
 public:
  static constexpr std::size_t kAllFrames =
      std::numeric_limits<std::size_t>::max();

  /// `config.cepstral_mean_norm` must be false.
  explicit StreamingMfcc(const MfccConfig& config = MfccConfig{});

  [[nodiscard]] const MfccConfig& config() const {
    return extractor_.config();
  }
  [[nodiscard]] std::size_t feature_dim() const {
    return extractor_.feature_dim();
  }

  /// Appends audio samples; computes cepstra for every frame that became
  /// complete. May be called with chunks of any size, including one
  /// sample at a time.
  void push(std::span<const float> samples);

  /// Marks end of stream: remaining frames become emittable (Δ windows
  /// clamp at the final frame, as in the batch path). push() afterwards
  /// is an error.
  void finish();

  [[nodiscard]] bool finished() const { return finished_; }

  /// Base cepstral frames computed so far.
  [[nodiscard]] std::size_t total_frames() const { return num_frames_; }

  /// Frames already returned by pop_ready().
  [[nodiscard]] std::size_t frames_emitted() const { return emitted_; }

  /// Frames whose features are final and not yet popped. Without deltas
  /// every computed frame is final immediately; with deltas a frame
  /// finalizes once 4 successor frames exist (or the stream finished).
  [[nodiscard]] std::size_t ready_frames() const;

  /// Pops up to `max_frames` finalized rows (possibly zero), identical to
  /// the corresponding rows of the batch extraction.
  [[nodiscard]] Matrix pop_ready(std::size_t max_frames = kAllFrames);

  /// Pops one finalized row into `out` (feature_dim-sized) without
  /// allocating; returns false when no row is ready. The allocation-free
  /// path the serving runtime uses.
  [[nodiscard]] bool pop_row(std::span<float> out);

 private:
  /// Writes finalized frame `t`'s features (base [+ Δ, ΔΔ]) into `out`.
  void write_row(std::size_t t, std::span<float> out) const;
  [[nodiscard]] std::span<const float> base_row(std::size_t t) const;
  /// Regression delta of base row `t` (window 2, edges clamped), matching
  /// add_delta_features arithmetic exactly.
  [[nodiscard]] float delta_at(std::size_t t, std::size_t d) const;
  [[nodiscard]] float delta2_at(std::size_t t, std::size_t d) const;

  MfccExtractor extractor_;
  // Raw samples not yet fully consumed. buffer_[0] is absolute sample
  // index buffer_start_; prev_sample_ holds index buffer_start_ - 1 for
  // pre-emphasis continuity across compactions.
  std::vector<float> buffer_;
  std::size_t buffer_start_ = 0;
  float prev_sample_ = 0.0F;
  // Reused per-frame work buffers (window, FFT, power, mel): the 10 ms
  // frame path allocates nothing.
  MfccExtractor::FrameScratch frame_scratch_;
  // Base cepstra, row-major [num_frames_ x num_cepstra]. Kept for the
  // whole stream: the left-clamped Δ windows of early frames reference
  // row 0, and at 13 floats per 10 ms the cost is ~5 KB per audio minute.
  std::vector<float> base_;
  std::size_t num_frames_ = 0;
  std::size_t emitted_ = 0;
  bool finished_ = false;
};

}  // namespace rtmobile::speech
