#include "tensor/packed_dense.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/quant_dot.hpp"
#include "util/check.hpp"

namespace rtmobile {

PackedDenseMatrix PackedDenseMatrix::pack(const Matrix& weights,
                                          WeightPrecision precision) {
  RT_REQUIRE(precision != WeightPrecision::kFp32,
             "pack: fp32 keeps the Matrix itself");
  PackedDenseMatrix out;
  out.precision_ = precision;
  out.rows_ = weights.rows();
  out.cols_ = weights.cols();

  if (precision == WeightPrecision::kFp16) {
    out.f16_.resize(weights.size());
    const std::span<const float> values = weights.span();
    for (std::size_t i = 0; i < values.size(); ++i) {
      out.f16_[i] = fp16_from_float(values[i]);
    }
    return out;
  }

  out.row_scale_.assign(out.rows_, 0.0F);
  if (precision == WeightPrecision::kInt8PerTensor) {
    float max_abs = 0.0F;
    for (const float w : weights.span()) {
      max_abs = std::max(max_abs, std::fabs(w));
    }
    std::fill(out.row_scale_.begin(), out.row_scale_.end(),
              max_abs / kInt8CodeLimit);
  } else {
    for (std::size_t r = 0; r < out.rows_; ++r) {
      float max_abs = 0.0F;
      for (const float w : weights.row(r)) {
        max_abs = std::max(max_abs, std::fabs(w));
      }
      out.row_scale_[r] = max_abs / kInt8CodeLimit;
    }
  }

  out.q8_.resize(weights.size());
  for (std::size_t r = 0; r < out.rows_; ++r) {
    const float scale = out.row_scale_[r];
    const std::span<const float> row = weights.row(r);
    std::int8_t* q = out.q8_.data() + r * out.cols_;
    for (std::size_t c = 0; c < out.cols_; ++c) {
      if (scale == 0.0F) {
        q[c] = 0;
      } else {
        q[c] = static_cast<std::int8_t>(std::clamp(
            std::round(row[c] / scale), -kInt8CodeLimit, kInt8CodeLimit));
      }
    }
  }
  return out;
}

void PackedDenseMatrix::gemv(std::span<const float> x,
                             std::span<float> y) const {
  gemv_rows(x, y, 0, rows_);
}

void PackedDenseMatrix::gemv_rows(std::span<const float> x,
                                  std::span<float> y, std::size_t row_begin,
                                  std::size_t row_end) const {
  RT_REQUIRE(x.size() == cols_ && y.size() == rows_,
             "packed gemv: shape mismatch");
  RT_REQUIRE(row_begin <= row_end && row_end <= rows_,
             "packed gemv: row range out of bounds");
  if (!q8_.empty()) {
    const float* xp = x.data();
    for (std::size_t r = row_begin; r < row_end; ++r) {
      const std::int8_t* row = q8_.data() + r * cols_;
      y[r] = dot_q8_f32(row, xp, cols_) * row_scale_[r];
    }
  } else {
    for (std::size_t r = row_begin; r < row_end; ++r) {
      const std::uint16_t* row = f16_.data() + r * cols_;
      y[r] = dot_f16_f32(row, x.data(), cols_);
    }
  }
}

void PackedDenseMatrix::gemm_rows(const Matrix& x, Matrix& y,
                                  std::size_t batch, std::size_t row_begin,
                                  std::size_t row_end) const {
  RT_REQUIRE(x.cols() == cols_ && y.cols() == rows_,
             "packed gemm: shape mismatch");
  RT_REQUIRE(batch <= x.rows() && batch <= y.rows(),
             "packed gemm: batch exceeds panel");
  RT_REQUIRE(row_begin <= row_end && row_end <= rows_,
             "packed gemm: row range out of bounds");
  if (!q8_.empty()) {
    for (std::size_t r = row_begin; r < row_end; ++r) {
      const std::int8_t* row = q8_.data() + r * cols_;
      const float scale = row_scale_[r];
      for (std::size_t b = 0; b < batch; ++b) {
        y.row(b)[r] = dot_q8_f32(row, x.row(b).data(), cols_) * scale;
      }
    }
  } else {
    for (std::size_t r = row_begin; r < row_end; ++r) {
      const std::uint16_t* row = f16_.data() + r * cols_;
      for (std::size_t b = 0; b < batch; ++b) {
        y.row(b)[r] = dot_f16_f32(row, x.row(b).data(), cols_);
      }
    }
  }
}

void PackedDenseMatrix::gemm_rows_q8(const QuantizedActivations& x, Matrix& y,
                                     std::size_t batch, std::size_t row_begin,
                                     std::size_t row_end) const {
  RT_REQUIRE(!q8_.empty(), "packed gemm q8: int8 weight storage required");
  RT_REQUIRE(x.dim == cols_ && y.cols() == rows_,
             "packed gemm q8: shape mismatch");
  RT_REQUIRE(batch <= x.batch && batch <= y.rows(),
             "packed gemm q8: batch exceeds panel");
  RT_REQUIRE(row_begin <= row_end && row_end <= rows_,
             "packed gemm q8: row range out of bounds");
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const std::int8_t* row = q8_.data() + r * cols_;
    const float scale = row_scale_[r];
    for (std::size_t b = 0; b < batch; ++b) {
      y.row(b)[r] = static_cast<float>(dot_q8_q8_i32(row, x.row(b), cols_)) *
                    scale * x.scale[b];
    }
  }
}

Matrix PackedDenseMatrix::to_dense() const {
  Matrix dense(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      dense(r, c) = q8_.empty()
                        ? fp16_bits_to_float(f16_[r * cols_ + c])
                        : static_cast<float>(q8_[r * cols_ + c]) *
                              row_scale_[r];
    }
  }
  return dense;
}

std::size_t PackedDenseMatrix::count_nonzero() const {
  std::size_t count = 0;
  if (!q8_.empty()) {
    for (const std::int8_t q : q8_) count += q != 0 ? 1 : 0;
  } else {
    // fp16 zero is 0x0000 or signed 0x8000.
    for (const std::uint16_t b : f16_) {
      count += (b & 0x7FFFU) != 0 ? 1 : 0;
    }
  }
  return count;
}

std::size_t PackedDenseMatrix::memory_bytes() const {
  std::size_t scale_bytes = 0;
  if (precision_ == WeightPrecision::kInt8PerRow) {
    scale_bytes = row_scale_.size() * sizeof(float);
  } else if (precision_ == WeightPrecision::kInt8PerTensor) {
    scale_bytes = sizeof(float);
  }
  return size() * bytes_per_weight(precision_) + scale_bytes;
}

}  // namespace rtmobile
