#include "tensor/io.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace rtmobile {
namespace {

constexpr std::array<char, 4> kMagic = {'R', 'T', 'M', 'B'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

void write_u64(std::ostream& os, std::uint64_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

[[nodiscard]] std::uint32_t read_u32(std::istream& is) {
  std::uint32_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  RT_CHECK(is.good(), "truncated matrix stream (u32)");
  return value;
}

[[nodiscard]] std::uint64_t read_u64(std::istream& is) {
  std::uint64_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  RT_CHECK(is.good(), "truncated matrix stream (u64)");
  return value;
}

}  // namespace

void write_matrix(std::ostream& os, const Matrix& m) {
  os.write(kMagic.data(), kMagic.size());
  write_u32(os, kVersion);
  write_u64(os, m.rows());
  write_u64(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
  RT_CHECK(os.good(), "failed writing matrix payload");
}

Matrix read_matrix(std::istream& is) {
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  RT_CHECK(is.good() && magic == kMagic, "bad matrix magic");
  const std::uint32_t version = read_u32(is);
  RT_CHECK(version == kVersion, "unsupported matrix version");
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t cols = read_u64(is);
  // Reject absurd sizes before allocating (defensive against corrupt files).
  RT_CHECK(rows <= (1ULL << 32) && cols <= (1ULL << 32) &&
               rows * cols <= (1ULL << 34),
           "matrix dimensions out of range");
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  RT_CHECK(is.good(), "truncated matrix payload");
  return m;
}

void write_vector(std::ostream& os, const Vector& v) {
  Matrix m(1, v.size());
  std::copy(v.begin(), v.end(), m.span().begin());
  write_matrix(os, m);
}

Vector read_vector(std::istream& is) {
  const Matrix m = read_matrix(is);
  RT_CHECK(m.rows() == 1, "vector payload must have one row");
  Vector v(m.cols());
  std::copy(m.span().begin(), m.span().end(), v.begin());
  return v;
}

void save_matrix(const std::string& path, const Matrix& m) {
  std::ofstream file(path, std::ios::binary);
  RT_CHECK(file.good(), "failed to open for write: " + path);
  write_matrix(file, m);
}

Matrix load_matrix(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  RT_CHECK(file.good(), "failed to open for read: " + path);
  return read_matrix(file);
}

}  // namespace rtmobile
