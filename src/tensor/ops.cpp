#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rtmobile {

float sigmoid(float x) {
  // Split on sign so exp never overflows.
  if (x >= 0.0F) {
    const float z = std::exp(-x);
    return 1.0F / (1.0F + z);
  }
  const float z = std::exp(x);
  return z / (1.0F + z);
}

float sigmoid_grad_from_output(float y) { return y * (1.0F - y); }

float tanh_grad_from_output(float y) { return 1.0F - y * y; }

void sigmoid_inplace(std::span<float> values) {
  for (float& v : values) v = sigmoid(v);
}

void tanh_inplace(std::span<float> values) {
  for (float& v : values) v = std::tanh(v);
}

namespace {
void require_same_size(std::size_t a, std::size_t b, const char* what) {
  RT_REQUIRE(a == b, std::string("span size mismatch in ") + what);
}
}  // namespace

void add(std::span<const float> a, std::span<const float> b,
         std::span<float> out) {
  require_same_size(a.size(), b.size(), "add");
  require_same_size(a.size(), out.size(), "add");
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
}

void add_inplace(std::span<float> a, std::span<const float> b) {
  require_same_size(a.size(), b.size(), "add_inplace");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> out) {
  require_same_size(a.size(), b.size(), "sub");
  require_same_size(a.size(), out.size(), "sub");
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
}

void mul(std::span<const float> a, std::span<const float> b,
         std::span<float> out) {
  require_same_size(a.size(), b.size(), "mul");
  require_same_size(a.size(), out.size(), "mul");
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

void mul_inplace(std::span<float> a, std::span<const float> b) {
  require_same_size(a.size(), b.size(), "mul_inplace");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= b[i];
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  require_same_size(x.size(), y.size(), "axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale_inplace(std::span<float> values, float alpha) {
  for (float& v : values) v *= alpha;
}

double dot(std::span<const float> a, std::span<const float> b) {
  require_same_size(a.size(), b.size(), "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double norm2(std::span<const float> values) {
  double acc = 0.0;
  for (const float v : values) {
    acc += static_cast<double>(v) * static_cast<double>(v);
  }
  return std::sqrt(acc);
}

double sum(std::span<const float> values) {
  double acc = 0.0;
  for (const float v : values) acc += static_cast<double>(v);
  return acc;
}

std::size_t argmax(std::span<const float> values) {
  RT_REQUIRE(!values.empty(), "argmax of empty span");
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

void softmax_inplace(std::span<float> values) {
  RT_REQUIRE(!values.empty(), "softmax of empty span");
  const float max_value = *std::max_element(values.begin(), values.end());
  double total = 0.0;
  for (float& v : values) {
    v = std::exp(v - max_value);
    total += static_cast<double>(v);
  }
  const float inv = static_cast<float>(1.0 / total);
  for (float& v : values) v *= inv;
}

void log_softmax(std::span<const float> values, std::span<float> out) {
  require_same_size(values.size(), out.size(), "log_softmax");
  RT_REQUIRE(!values.empty(), "log_softmax of empty span");
  const float max_value = *std::max_element(values.begin(), values.end());
  double total = 0.0;
  for (const float v : values) {
    total += std::exp(static_cast<double>(v) - static_cast<double>(max_value));
  }
  const float log_z =
      max_value + static_cast<float>(std::log(total));
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = values[i] - log_z;
}

void fill_normal(std::span<float> values, Rng& rng, float stddev) {
  for (float& v : values) v = rng.normal(0.0F, stddev);
}

void fill_uniform(std::span<float> values, Rng& rng, float bound) {
  RT_REQUIRE(bound >= 0.0F, "uniform bound must be non-negative");
  for (float& v : values) v = rng.uniform(-bound, bound);
}

void xavier_init(Matrix& weights, Rng& rng) {
  RT_REQUIRE(weights.rows() > 0 && weights.cols() > 0,
             "xavier_init on empty matrix");
  const float bound = std::sqrt(
      6.0F / static_cast<float>(weights.rows() + weights.cols()));
  fill_uniform(weights.span(), rng, bound);
}

void recurrent_init(Matrix& weights, Rng& rng) {
  xavier_init(weights, rng);
  // Normalize rows to unit norm, then shrink slightly below 1 so repeated
  // application during long BPTT windows neither explodes nor dies.
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    auto row = weights.row(r);
    const double n = norm2(row);
    if (n > 0.0) scale_inplace(row, static_cast<float>(0.9 / n));
  }
}

float max_abs_diff(std::span<const float> a, std::span<const float> b) {
  require_same_size(a.size(), b.size(), "max_abs_diff");
  float worst = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace rtmobile
