// Dense GEMV/GEMM reference kernels.
//
// These are the dense baselines that the compiled sparse executors are
// validated against and benchmarked relative to. The blocked variants are
// the "dense baseline" used in Table II / Figure 4.
#pragma once

#include <span>

#include "tensor/matrix.hpp"

namespace rtmobile {

/// y = W x (naive row-major loop). Reference implementation for tests.
void gemv_naive(const Matrix& w, std::span<const float> x,
                std::span<float> y);

/// y = W x with 4-way row unrolling and a blocked column loop; the
/// production dense kernel.
void gemv(const Matrix& w, std::span<const float> x, std::span<float> y);

/// y += W x (accumulating variant used by the RNN cells).
void gemv_accumulate(const Matrix& w, std::span<const float> x,
                     std::span<float> y);

/// y = W^T x without materializing the transpose (used in BPTT).
void gemv_transposed(const Matrix& w, std::span<const float> x,
                     std::span<float> y);

/// y += W^T x.
void gemv_transposed_accumulate(const Matrix& w, std::span<const float> x,
                                std::span<float> y);

/// C = A B (naive). Reference for tests.
void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A B with cache blocking.
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// W += alpha * outer(u, v): rank-1 update used for weight gradients.
void outer_accumulate(float alpha, std::span<const float> u,
                      std::span<const float> v, Matrix& w);

}  // namespace rtmobile
