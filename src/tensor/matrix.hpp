// Dense row-major matrix and vector types.
//
// These are deliberately simple owning containers (Core Guidelines C.20:
// rule of zero) with bounds-checked element access in debug paths and span
// views for kernels. All numeric code in the library is float32; the
// mobile-GPU fp16 behaviour in the paper is modeled at the hardware-model
// layer (bytes moved), not by storing half floats.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/aligned.hpp"
#include "util/check.hpp"

namespace rtmobile {

/// Owning, 64-byte-aligned float vector with checked access helpers.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t size, float fill = 0.0F) : data_(size, fill) {}
  explicit Vector(std::vector<float> values)
      : data_(values.begin(), values.end()) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const float& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] float& at(std::size_t i) {
    RT_REQUIRE(i < data_.size(), "vector index out of range");
    return data_[i];
  }
  [[nodiscard]] const float& at(std::size_t i) const {
    RT_REQUIRE(i < data_.size(), "vector index out of range");
    return data_[i];
  }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  [[nodiscard]] std::span<float> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> span() const {
    return {data_.data(), data_.size()};
  }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }
  void resize(std::size_t size, float fill = 0.0F) { data_.resize(size, fill); }

  [[nodiscard]] auto begin() { return data_.begin(); }
  [[nodiscard]] auto end() { return data_.end(); }
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

  friend bool operator==(const Vector& a, const Vector& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<float, AlignedAllocator<float>> data_;
};

/// Owning, 64-byte-aligned row-major float matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from a row-major initializer (size must equal rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> values)
      : rows_(rows), cols_(cols), data_(values.begin(), values.end()) {
    RT_REQUIRE(values.size() == rows * cols,
               "matrix initializer size mismatch");
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const float& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] float& at(std::size_t r, std::size_t c) {
    RT_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const float& at(std::size_t r, std::size_t c) const {
    RT_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  /// View of one row.
  [[nodiscard]] std::span<float> row(std::size_t r) {
    RT_REQUIRE(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    RT_REQUIRE(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  /// Flat view of the whole buffer.
  [[nodiscard]] std::span<float> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> span() const {
    return {data_.data(), data_.size()};
  }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  /// Returns the transpose as a new matrix.
  [[nodiscard]] Matrix transposed() const;

  /// Number of entries with |w| > threshold (used for sparsity accounting).
  [[nodiscard]] std::size_t count_nonzero(float threshold = 0.0F) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float, AlignedAllocator<float>> data_;
};

}  // namespace rtmobile
