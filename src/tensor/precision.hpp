// Weight storage precision primitives.
//
// The paper's mobile GPU kernels store weights in 16-bit floating point
// ("Our GPU implementation uses 16-bit floating point"); the CPU path is
// fp32. WeightPrecision names the storage grid a compiled weight matrix
// carries; the fp16 conversion helpers implement IEEE binary16 with
// round-to-nearest-even. These live in the tensor layer so the packed
// sparse formats (src/sparse) and the compiler (src/compiler) can share
// them without depending on the model layer; core/quantize re-exports
// them for the storage-simulation API.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/aligned.hpp"

namespace rtmobile {

enum class WeightPrecision : std::uint8_t {
  kFp32,          // reference, 4 bytes/weight
  kFp16,          // IEEE 754 binary16, 2 bytes/weight (the paper's GPU path)
  kInt8PerTensor, // symmetric int8, one scale per matrix
  kInt8PerRow,    // symmetric int8, one scale per output row
};

[[nodiscard]] const char* to_string(WeightPrecision precision);

/// Parses the names to_string produces ("fp32", "fp16", "int8",
/// "int8/row"); throws std::invalid_argument on anything else.
[[nodiscard]] WeightPrecision weight_precision_from_string(
    const char* name);

/// Stored bytes per weight under the precision (scales amortize to ~0).
[[nodiscard]] std::size_t bytes_per_weight(WeightPrecision precision);

/// float -> IEEE binary16 bit pattern, round-to-nearest-even; handles
/// normals, subnormals, overflow-to-infinity, and NaN.
[[nodiscard]] std::uint16_t fp16_from_float(float value);

/// IEEE binary16 bit pattern -> float (exact).
[[nodiscard]] float fp16_to_float(std::uint16_t half_bits);

/// Rounds a float through fp16 storage (quantize + dequantize).
[[nodiscard]] float fp16_round_trip(float value);

/// Hot-path fp16 -> fp32 conversion: branch-light integer
/// manipulation, exact for every binary16 value (tests verify all
/// 65536 patterns against fp16_to_float). Deliberately has exactly one
/// definition across the project — no per-ISA #if — so including it
/// anywhere is ODR-safe; the bulk kernels batch conversions through
/// F16C intrinsics inside tensor/quant_dot.hpp instead and fall back
/// to this for tails.
inline float fp16_bits_to_float(std::uint16_t half_bits) {
  // Shift mantissa+exponent into binary32 position and rebias; the
  // subnormal branch renormalizes exactly via one float subtraction.
  const std::uint32_t sign = static_cast<std::uint32_t>(half_bits & 0x8000U)
                             << 16;
  std::uint32_t o = static_cast<std::uint32_t>(half_bits & 0x7FFFU) << 13;
  const std::uint32_t exponent = o & 0x0F800000U;  // 0x7C00 << 13
  o += (127U - 15U) << 23;
  if (exponent == 0x0F800000U) {
    o += (128U - 16U) << 23;  // inf / nan: force exponent to 0xFF
  } else if (exponent == 0U) {
    // Zero / subnormal: value is mantissa * 2^-24. Adding the implicit
    // bit and subtracting 2^-14 computes that exactly in float.
    o += 1U << 23;
    o = std::bit_cast<std::uint32_t>(std::bit_cast<float>(o) -
                                     std::bit_cast<float>(113U << 23));
  }
  return std::bit_cast<float>(o | sign);
}

/// The symmetric int8 grid: codes live in [-127, 127] (the -128 slot is
/// unused so negation cannot overflow), dequantized as code * scale with
/// scale = max|w| / 127.
inline constexpr float kInt8CodeLimit = 127.0F;

/// Storage grid for the *activations* flowing through the fused batched
/// step (weights have their own WeightPrecision). kInt8 puts every
/// stream's activation vector on the same symmetric grid as the int8
/// weights, so the packed matmat kernels multiply code by code and
/// accumulate in int32 — exact integer arithmetic, therefore identical
/// across SIMD widths and summation orders — instead of round-tripping
/// the panel through fp32. Only int8 weight plans consume it; fp32/fp16
/// plans ignore the setting and read the fp32 panel.
enum class ActivationPrecision : std::uint8_t {
  kFp32,  // activations stay fp32 (the default; numerics unchanged)
  kInt8,  // symmetric per-stream int8 codes, int32 accumulation
};

[[nodiscard]] const char* to_string(ActivationPrecision precision);

/// Parses "fp32" / "int8"; throws std::invalid_argument otherwise.
[[nodiscard]] ActivationPrecision activation_precision_from_string(
    const char* name);

/// A batch of activation vectors quantized onto the symmetric int8 grid,
/// one scale per stream (scale = max|x| / 127 over that stream's vector,
/// so the panel's dynamic range per stream is preserved). Buffers are
/// grow-only: resize() never shrinks, which is what keeps the serving
/// step path allocation-free once the widest panel has been seen.
struct QuantizedActivations {
  std::size_t batch = 0;
  std::size_t dim = 0;
  /// Row-major [batch x dim] code panel (row b = stream b's codes).
  std::vector<std::int8_t, AlignedAllocator<std::int8_t>> codes;
  /// Per-stream dequantization scale (codes[b] * scale[b] ~= x[b]).
  std::vector<float, AlignedAllocator<float>> scale;

  /// Sets the logical shape, growing the buffers if needed (never
  /// shrinking). Contents are unspecified until quantize_row() fills
  /// each row.
  void resize(std::size_t new_batch, std::size_t new_dim);

  /// Quantizes one stream's activation vector (x.size() == dim) into row
  /// b: scale[b] = max|x| / 127, codes = round(x * 127 / max|x|) clamped
  /// to the grid (half away from zero). Element-wise exact arithmetic —
  /// deterministic and identical on every build, vectorized or not.
  void quantize_row(std::size_t b, std::span<const float> x);

  /// Builds the column-major mirror of rows [0, active_batch): tcodes
  /// lays out each activation dimension's codes contiguously across
  /// streams, padded with zero lanes to a multiple of 8 so the matmat
  /// kernels can load whole stream groups with one instruction. Call
  /// after every row is quantized; the padded width becomes
  /// padded_batch. Grow-only like the row-major panel.
  void transpose(std::size_t active_batch);

  [[nodiscard]] const std::int8_t* row(std::size_t b) const {
    return codes.data() + b * dim;
  }

  /// Dimension c's codes across all padded_batch stream lanes (valid
  /// after transpose()).
  [[nodiscard]] const std::int8_t* col(std::size_t c) const {
    return tcodes.data() + c * padded_batch;
  }

  /// Stream lanes per tcodes column: the transpose()d batch rounded up
  /// to 8, pad lanes zeroed.
  std::size_t padded_batch = 0;
  /// Column-major [dim x padded_batch] code panel (built by transpose()).
  std::vector<std::int8_t, AlignedAllocator<std::int8_t>> tcodes;
};

}  // namespace rtmobile
