// Inner dot products for the packed quantized int8 kernels.
//
// The fp32 and fp16 kernels must preserve a strict left-to-right
// accumulation order (their outputs are tested bit-identical to the
// storage simulation), which blocks SIMD: the compiler may not
// reassociate float adds. The int8 path only promises to stay within
// the grid's rounding slack, so it commits to a fixed 8-lane summation
// tree instead — lane j accumulates elements k+j — which maps exactly
// onto one AVX2 register (sign-extend 8 codes, convert, FMA). Every
// int8 caller (spmv LRE and no-LRE, spmm, dense gemv) goes through
// these helpers, so all of them share one summation tree and remain
// bit-identical to each other within a build.
//
// CMake compiles only the two TUs including this header with
// -mavx2 -mfma (when the configuring host supports them) and
// -ffp-contract=off, so the neighboring fp16 loops cannot be
// FMA-contracted away from the simulation's arithmetic. Do not include
// this header from other translation units: the AVX2/fallback split is
// per-TU and would otherwise violate the one-definition rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "tensor/precision.hpp"

#if (defined(__AVX2__) && defined(__FMA__)) || defined(__F16C__)
#include <immintrin.h>
#endif

namespace rtmobile {

// ---- fp16 dot products (strict left-to-right accumulation) ----
//
// Bit-identity with the storage simulation requires the exact
// accumulation order of BspcMatrix::spmv / gemv, so only the fp16 ->
// fp32 *conversion* is vectorized (F16C converts 8 halves per
// instruction into a staging buffer); the multiply-adds stay sequential.

/// sum_k fp16(v[k]) * x[k], accumulated left to right.
inline float dot_f16_f32(const std::uint16_t* v, const float* x,
                         std::size_t n) {
  float acc = 0.0F;
  std::size_t k = 0;
#if defined(__F16C__)
  alignas(32) float buf[8];
  for (; k + 8 <= n; k += 8) {
    _mm256_store_ps(buf, _mm256_cvtph_ps(_mm_loadu_si128(
                             reinterpret_cast<const __m128i*>(v + k))));
    for (std::size_t j = 0; j < 8; ++j) acc += buf[j] * x[k + j];
  }
#endif
  for (; k < n; ++k) acc += fp16_bits_to_float(v[k]) * x[k];
  return acc;
}

/// sum_k fp16(v[k]) * x[idx[k]], accumulated left to right.
inline float dot_f16_f32_indexed(const std::uint16_t* v, const float* x,
                                 const std::uint32_t* idx, std::size_t n) {
  float acc = 0.0F;
  std::size_t k = 0;
#if defined(__F16C__)
  alignas(32) float buf[8];
  for (; k + 8 <= n; k += 8) {
    _mm256_store_ps(buf, _mm256_cvtph_ps(_mm_loadu_si128(
                             reinterpret_cast<const __m128i*>(v + k))));
    for (std::size_t j = 0; j < 8; ++j) acc += buf[j] * x[idx[k + j]];
  }
#endif
  for (; k < n; ++k) acc += fp16_bits_to_float(v[k]) * x[idx[k]];
  return acc;
}

// ---- int8 dot products (fixed 8-lane summation tree) ----

#if defined(__AVX2__) && defined(__FMA__)

namespace quant_detail {

/// Horizontal sum with the fixed pairwise tree the scalar fallback uses.
inline float reduce_lanes(__m256 acc) {
  alignas(32) float lane[8];
  _mm256_store_ps(lane, acc);
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

}  // namespace quant_detail

/// sum_k q[k] * x[k] in fp32 (8-lane tree).
inline float dot_q8_f32(const std::int8_t* q, const float* x,
                        std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + k));
    const __m256 vq = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    acc = _mm256_fmadd_ps(vq, _mm256_loadu_ps(x + k), acc);
  }
  float tail = 0.0F;
  for (; k < n; ++k) tail += static_cast<float>(q[k]) * x[k];
  return quant_detail::reduce_lanes(acc) + tail;
}

/// sum_k q[k] * x[idx[k]] in fp32 — same tree as the contiguous form
/// (the gather buffer only reorders loads, not the arithmetic).
inline float dot_q8_f32_indexed(const std::int8_t* q, const float* x,
                                const std::uint32_t* idx, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t k = 0;
  alignas(32) float gathered[8];
  for (; k + 8 <= n; k += 8) {
    for (std::size_t j = 0; j < 8; ++j) gathered[j] = x[idx[k + j]];
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + k));
    const __m256 vq = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    acc = _mm256_fmadd_ps(vq, _mm256_load_ps(gathered), acc);
  }
  float tail = 0.0F;
  for (; k < n; ++k) tail += static_cast<float>(q[k]) * x[idx[k]];
  return quant_detail::reduce_lanes(acc) + tail;
}

/// sum_k q[k] * a[k] in int32 — the fused path's int8-weight x
/// int8-activation dot. Integer accumulation is exact, so unlike the
/// float trees above this needs no fixed summation order: the AVX2
/// madd_epi16 path and the scalar fallback return identical sums for
/// any input. Overflow-safe for any realistic n: |q*a| <= 127^2, so the
/// int32 accumulator holds > 2^17 * 127^2 products.
inline std::int32_t dot_q8_q8_i32(const std::int8_t* q,
                                  const std::int8_t* a, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t k = 0;
  for (; k + 16 <= n; k += 16) {
    const __m256i qw = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + k)));
    const __m256i aw = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + k)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(qw, aw));
  }
  alignas(32) std::int32_t lane[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane), acc);
  std::int32_t sum = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
                     ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  for (; k < n; ++k) {
    sum += static_cast<std::int32_t>(q[k]) * static_cast<std::int32_t>(a[k]);
  }
  return sum;
}

/// acc[b] += sum_k w[k] * a[k][b] for bp streams at once (bp a multiple
/// of 8) — the fused batched-matmat microkernel. `panel` holds the
/// block's activation codes interleaved stream-major: for column pair p,
/// 32-bit lane b is the int16 pair (a[2p][b], a[2p+1][b]), with odd-tail
/// columns and batch-pad lanes zeroed by the gather. Each weight pair is
/// broadcast once and madd'ed across all streams, so there is no
/// per-stream horizontal reduction at all; int32 accumulation keeps the
/// result exactly equal to dot_q8_q8_i32 per stream.
inline void madd_q8_pairs(const std::int8_t* w, std::size_t n,
                          const std::int16_t* panel, std::size_t bp,
                          std::int32_t* acc) {
  const std::size_t pairs = (n + 1) / 2;
  for (std::size_t p = 0; p < pairs; ++p) {
    const std::int32_t w0 = w[2 * p];
    const std::int32_t w1 = 2 * p + 1 < n ? w[2 * p + 1] : 0;
    const std::int32_t pair_bits =
        (w0 & 0xFFFF) | (static_cast<std::int32_t>(
                            static_cast<std::uint32_t>(w1) << 16));
    const __m256i wpair = _mm256_set1_epi32(pair_bits);
    const std::int16_t* lane = panel + p * 2 * bp;
    for (std::size_t b = 0; b < bp; b += 8) {
      const __m256i codes = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(lane + 2 * b));
      __m256i* accv = reinterpret_cast<__m256i*>(acc + b);
      _mm256_storeu_si256(
          accv, _mm256_add_epi32(_mm256_loadu_si256(accv),
                                 _mm256_madd_epi16(wpair, codes)));
    }
  }
}

/// Whole-block form of madd_q8_pairs:
/// acc[i][b] += sum_k w[i][k] * a[k][b] for every active row i at once.
/// Weight rows are expanded four pairs at a time — one sign-extending
/// 8-byte load plus lane broadcasts — instead of per-pair scalar bit
/// packing, which is where the pair kernel spends most of its
/// instructions on the wide blocks BSPC actually produces. Identical
/// int32 sums to madd_q8_pairs row by row (integer associativity).
inline void madd_q8_block(const std::int8_t* w, std::size_t col_count,
                          std::size_t n_rows, const std::int16_t* panel,
                          std::size_t bp, std::int32_t* acc) {
  const std::size_t pairs = (col_count + 1) / 2;
  // Pair groups whose 8 weight bytes are all in bounds.
  const std::size_t groups = col_count / 8;
  for (std::size_t i = 0; i < n_rows; ++i) {
    const std::int8_t* wr = w + i * col_count;
    std::int32_t* arow = acc + i * bp;
    for (std::size_t g = 0; g < groups; ++g) {
      const __m128i w16 = _mm_cvtepi8_epi16(_mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(wr + 8 * g)));
      const __m256i wp0 = _mm256_broadcastd_epi32(w16);
      const __m256i wp1 =
          _mm256_broadcastd_epi32(_mm_shuffle_epi32(w16, 0x55));
      const __m256i wp2 =
          _mm256_broadcastd_epi32(_mm_shuffle_epi32(w16, 0xAA));
      const __m256i wp3 =
          _mm256_broadcastd_epi32(_mm_shuffle_epi32(w16, 0xFF));
      const std::int16_t* lane = panel + g * 8 * bp;
      for (std::size_t b = 0; b < bp; b += 8) {
        __m256i a =
            _mm256_loadu_si256(reinterpret_cast<__m256i*>(arow + b));
        a = _mm256_add_epi32(
            a, _mm256_madd_epi16(
                   wp0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                            lane + 2 * b))));
        a = _mm256_add_epi32(
            a, _mm256_madd_epi16(
                   wp1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                            lane + 2 * bp + 2 * b))));
        a = _mm256_add_epi32(
            a, _mm256_madd_epi16(
                   wp2, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                            lane + 4 * bp + 2 * b))));
        a = _mm256_add_epi32(
            a, _mm256_madd_epi16(
                   wp3, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                            lane + 6 * bp + 2 * b))));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(arow + b), a);
      }
    }
    if (groups * 4 < pairs) {  // tail pairs (block width not 8-aligned)
      madd_q8_pairs(wr + 8 * groups, col_count - 8 * groups,
                    panel + groups * 8 * bp, bp, arow);
    }
  }
}

/// Builds one column pair's interleaved panel lane from the transposed
/// activation panel: lane[2b] = c0[b], lane[2b+1] = c1[b] (or 0 when c1
/// is null — the odd-tail column), widened to int16. `bp` is a multiple
/// of 8 so the whole column interleaves as straight loads + byte
/// unpack + sign extension, no strided scalar stores.
inline void interleave_q8_pairs(const std::int8_t* c0, const std::int8_t* c1,
                                std::size_t bp, std::int16_t* lane) {
  std::size_t b = 0;
  for (; b + 16 <= bp; b += 16) {
    const __m128i lo8 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c0 + b));
    const __m128i hi8 =
        c1 ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(c1 + b))
           : _mm_setzero_si128();
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(lane + 2 * b),
        _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(lo8, hi8)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(lane + 2 * b + 16),
        _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(lo8, hi8)));
  }
  if (b < bp) {  // 8-lane tail: one 64-bit load per column
    const __m128i lo8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(c0 + b));
    const __m128i hi8 =
        c1 ? _mm_loadl_epi64(reinterpret_cast<const __m128i*>(c1 + b))
           : _mm_setzero_si128();
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(lane + 2 * b),
        _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(lo8, hi8)));
  }
}

#else  // portable fallback: same summation tree, scalar lanes

namespace quant_detail {

template <typename LoadX>
inline float dot_lanes(const std::int8_t* q, std::size_t n, LoadX load) {
  float lane[8] = {0.0F, 0.0F, 0.0F, 0.0F, 0.0F, 0.0F, 0.0F, 0.0F};
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    for (std::size_t j = 0; j < 8; ++j) {
      // NOTE: matches the AVX2 build only when FMA contraction is off
      // for this TU; the int8 parity tests are tolerance-based, so a
      // contracted build is still correct, just not bit-equal to it.
      lane[j] += static_cast<float>(q[k + j]) * load(k + j);
    }
  }
  float tail = 0.0F;
  for (; k < n; ++k) tail += static_cast<float>(q[k]) * load(k);
  return (((lane[0] + lane[1]) + (lane[2] + lane[3])) +
          ((lane[4] + lane[5]) + (lane[6] + lane[7]))) +
         tail;
}

}  // namespace quant_detail

inline float dot_q8_f32(const std::int8_t* q, const float* x,
                        std::size_t n) {
  return quant_detail::dot_lanes(q, n,
                                 [x](std::size_t k) { return x[k]; });
}

inline float dot_q8_f32_indexed(const std::int8_t* q, const float* x,
                                const std::uint32_t* idx, std::size_t n) {
  return quant_detail::dot_lanes(
      q, n, [x, idx](std::size_t k) { return x[idx[k]]; });
}

/// Exact int32 accumulation — bit-identical to the AVX2 build by
/// construction (integer addition is associative).
inline std::int32_t dot_q8_q8_i32(const std::int8_t* q,
                                  const std::int8_t* a, std::size_t n) {
  std::int32_t sum = 0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += static_cast<std::int32_t>(q[k]) * static_cast<std::int32_t>(a[k]);
  }
  return sum;
}

/// Scalar form of the fused microkernel — identical int32 sums to the
/// AVX2 build by integer associativity. Panel layout matches: pair p's
/// lane b is (a[2p][b], a[2p+1][b]) as adjacent int16s.
inline void madd_q8_pairs(const std::int8_t* w, std::size_t n,
                          const std::int16_t* panel, std::size_t bp,
                          std::int32_t* acc) {
  const std::size_t pairs = (n + 1) / 2;
  for (std::size_t p = 0; p < pairs; ++p) {
    const std::int32_t w0 = w[2 * p];
    const std::int32_t w1 = 2 * p + 1 < n ? w[2 * p + 1] : 0;
    const std::int16_t* lane = panel + p * 2 * bp;
    for (std::size_t b = 0; b < bp; ++b) {
      acc[b] += w0 * lane[2 * b] + w1 * lane[2 * b + 1];
    }
  }
}

/// Scalar form of the block kernel — row-by-row madd_q8_pairs, which is
/// the same int32 arithmetic the AVX2 build performs.
inline void madd_q8_block(const std::int8_t* w, std::size_t col_count,
                          std::size_t n_rows, const std::int16_t* panel,
                          std::size_t bp, std::int32_t* acc) {
  for (std::size_t i = 0; i < n_rows; ++i) {
    madd_q8_pairs(w + i * col_count, col_count, panel, bp, acc + i * bp);
  }
}

/// Scalar form of the panel interleave — same lane layout as the AVX2
/// build (values are exact either way).
inline void interleave_q8_pairs(const std::int8_t* c0, const std::int8_t* c1,
                                std::size_t bp, std::int16_t* lane) {
  for (std::size_t b = 0; b < bp; ++b) {
    lane[2 * b] = c0[b];
    lane[2 * b + 1] = c1 ? c1[b] : std::int16_t{0};
  }
}

#endif

}  // namespace rtmobile
