// Inner dot products for the packed quantized int8 kernels.
//
// The fp32 and fp16 kernels must preserve a strict left-to-right
// accumulation order (their outputs are tested bit-identical to the
// storage simulation), which blocks SIMD: the compiler may not
// reassociate float adds. The int8 path only promises to stay within
// the grid's rounding slack, so it commits to a fixed 8-lane summation
// tree instead — lane j accumulates elements k+j — which maps exactly
// onto one AVX2 register (sign-extend 8 codes, convert, FMA). Every
// int8 caller (spmv LRE and no-LRE, spmm, dense gemv) goes through
// these helpers, so all of them share one summation tree and remain
// bit-identical to each other within a build.
//
// CMake compiles only the two TUs including this header with
// -mavx2 -mfma (when the configuring host supports them) and
// -ffp-contract=off, so the neighboring fp16 loops cannot be
// FMA-contracted away from the simulation's arithmetic. Do not include
// this header from other translation units: the AVX2/fallback split is
// per-TU and would otherwise violate the one-definition rule.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/precision.hpp"

#if (defined(__AVX2__) && defined(__FMA__)) || defined(__F16C__)
#include <immintrin.h>
#endif

namespace rtmobile {

// ---- fp16 dot products (strict left-to-right accumulation) ----
//
// Bit-identity with the storage simulation requires the exact
// accumulation order of BspcMatrix::spmv / gemv, so only the fp16 ->
// fp32 *conversion* is vectorized (F16C converts 8 halves per
// instruction into a staging buffer); the multiply-adds stay sequential.

/// sum_k fp16(v[k]) * x[k], accumulated left to right.
inline float dot_f16_f32(const std::uint16_t* v, const float* x,
                         std::size_t n) {
  float acc = 0.0F;
  std::size_t k = 0;
#if defined(__F16C__)
  alignas(32) float buf[8];
  for (; k + 8 <= n; k += 8) {
    _mm256_store_ps(buf, _mm256_cvtph_ps(_mm_loadu_si128(
                             reinterpret_cast<const __m128i*>(v + k))));
    for (std::size_t j = 0; j < 8; ++j) acc += buf[j] * x[k + j];
  }
#endif
  for (; k < n; ++k) acc += fp16_bits_to_float(v[k]) * x[k];
  return acc;
}

/// sum_k fp16(v[k]) * x[idx[k]], accumulated left to right.
inline float dot_f16_f32_indexed(const std::uint16_t* v, const float* x,
                                 const std::uint32_t* idx, std::size_t n) {
  float acc = 0.0F;
  std::size_t k = 0;
#if defined(__F16C__)
  alignas(32) float buf[8];
  for (; k + 8 <= n; k += 8) {
    _mm256_store_ps(buf, _mm256_cvtph_ps(_mm_loadu_si128(
                             reinterpret_cast<const __m128i*>(v + k))));
    for (std::size_t j = 0; j < 8; ++j) acc += buf[j] * x[idx[k + j]];
  }
#endif
  for (; k < n; ++k) acc += fp16_bits_to_float(v[k]) * x[idx[k]];
  return acc;
}

// ---- int8 dot products (fixed 8-lane summation tree) ----

#if defined(__AVX2__) && defined(__FMA__)

namespace quant_detail {

/// Horizontal sum with the fixed pairwise tree the scalar fallback uses.
inline float reduce_lanes(__m256 acc) {
  alignas(32) float lane[8];
  _mm256_store_ps(lane, acc);
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

}  // namespace quant_detail

/// sum_k q[k] * x[k] in fp32 (8-lane tree).
inline float dot_q8_f32(const std::int8_t* q, const float* x,
                        std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + k));
    const __m256 vq = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    acc = _mm256_fmadd_ps(vq, _mm256_loadu_ps(x + k), acc);
  }
  float tail = 0.0F;
  for (; k < n; ++k) tail += static_cast<float>(q[k]) * x[k];
  return quant_detail::reduce_lanes(acc) + tail;
}

/// sum_k q[k] * x[idx[k]] in fp32 — same tree as the contiguous form
/// (the gather buffer only reorders loads, not the arithmetic).
inline float dot_q8_f32_indexed(const std::int8_t* q, const float* x,
                                const std::uint32_t* idx, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t k = 0;
  alignas(32) float gathered[8];
  for (; k + 8 <= n; k += 8) {
    for (std::size_t j = 0; j < 8; ++j) gathered[j] = x[idx[k + j]];
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + k));
    const __m256 vq = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    acc = _mm256_fmadd_ps(vq, _mm256_load_ps(gathered), acc);
  }
  float tail = 0.0F;
  for (; k < n; ++k) tail += static_cast<float>(q[k]) * x[idx[k]];
  return quant_detail::reduce_lanes(acc) + tail;
}

#else  // portable fallback: same summation tree, scalar lanes

namespace quant_detail {

template <typename LoadX>
inline float dot_lanes(const std::int8_t* q, std::size_t n, LoadX load) {
  float lane[8] = {0.0F, 0.0F, 0.0F, 0.0F, 0.0F, 0.0F, 0.0F, 0.0F};
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    for (std::size_t j = 0; j < 8; ++j) {
      // NOTE: matches the AVX2 build only when FMA contraction is off
      // for this TU; the int8 parity tests are tolerance-based, so a
      // contracted build is still correct, just not bit-equal to it.
      lane[j] += static_cast<float>(q[k + j]) * load(k + j);
    }
  }
  float tail = 0.0F;
  for (; k < n; ++k) tail += static_cast<float>(q[k]) * load(k);
  return (((lane[0] + lane[1]) + (lane[2] + lane[3])) +
          ((lane[4] + lane[5]) + (lane[6] + lane[7]))) +
         tail;
}

}  // namespace quant_detail

inline float dot_q8_f32(const std::int8_t* q, const float* x,
                        std::size_t n) {
  return quant_detail::dot_lanes(q, n,
                                 [x](std::size_t k) { return x[k]; });
}

inline float dot_q8_f32_indexed(const std::int8_t* q, const float* x,
                                const std::uint32_t* idx, std::size_t n) {
  return quant_detail::dot_lanes(
      q, n, [x, idx](std::size_t k) { return x[idx[k]]; });
}

#endif

}  // namespace rtmobile
