// Binary serialization for matrices and vectors.
//
// Format: magic "RTMB", u32 version, u64 rows, u64 cols, then row-major
// float32 payload. Used to checkpoint trained/pruned models so the bench
// harness can reuse training results across binaries.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/matrix.hpp"

namespace rtmobile {

/// Writes `m` to a binary stream. Throws std::runtime_error on failure.
void write_matrix(std::ostream& os, const Matrix& m);

/// Reads a matrix written by write_matrix. Throws on malformed input.
[[nodiscard]] Matrix read_matrix(std::istream& is);

/// Writes `v` as a 1 x n matrix payload.
void write_vector(std::ostream& os, const Vector& v);

/// Reads a vector written by write_vector.
[[nodiscard]] Vector read_vector(std::istream& is);

/// Convenience file wrappers.
void save_matrix(const std::string& path, const Matrix& m);
[[nodiscard]] Matrix load_matrix(const std::string& path);

}  // namespace rtmobile
