// PackedDenseMatrix — dense row-major weights stored at int8/fp16 width.
//
// The compiler leaves unpruned matrices (typically the FC output layer)
// dense; when CompilerOptions::precision asks for reduced storage those
// plans pack here instead of carrying fp32. Same numerics contract as
// PackedQuantizedBspc: fp32 accumulation, int8 scales applied once per
// row, fp16 bit-identical to running the fp32 GEMV on fp16-rounded
// weights (the per-row accumulation order matches gemv exactly).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/aligned.hpp"
#include "tensor/matrix.hpp"
#include "tensor/precision.hpp"

namespace rtmobile {

class PackedDenseMatrix {
 public:
  PackedDenseMatrix() = default;

  /// Quantizes `weights` under `precision` (kFp32 rejected — keep the
  /// Matrix itself for fp32).
  [[nodiscard]] static PackedDenseMatrix pack(const Matrix& weights,
                                              WeightPrecision precision);

  [[nodiscard]] WeightPrecision precision() const { return precision_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }

  /// y = W x with fp32 accumulation.
  void gemv(std::span<const float> x, std::span<float> y) const;

  /// Rows [row_begin, row_end) only — the unit the threaded dense plan
  /// partitions across the pool.
  void gemv_rows(std::span<const float> x, std::span<float> y,
                 std::size_t row_begin, std::size_t row_end) const;

  /// Dequantized dense reconstruction (for verification).
  [[nodiscard]] Matrix to_dense() const;

  /// Entries that dequantize to a nonzero value.
  [[nodiscard]] std::size_t count_nonzero() const;

  /// Values at their stored width plus scale overhead.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  WeightPrecision precision_ = WeightPrecision::kInt8PerTensor;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int8_t, AlignedAllocator<std::int8_t>> q8_;
  std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> f16_;
  std::vector<float, AlignedAllocator<float>> row_scale_;  // int8 only
};

}  // namespace rtmobile
