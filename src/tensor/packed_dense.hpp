// PackedDenseMatrix — dense row-major weights stored at int8/fp16 width.
//
// The compiler leaves unpruned matrices (typically the FC output layer)
// dense; when CompilerOptions::precision asks for reduced storage those
// plans pack here instead of carrying fp32. Same numerics contract as
// PackedQuantizedBspc: fp32 accumulation, int8 scales applied once per
// row, fp16 bit-identical to running the fp32 GEMV on fp16-rounded
// weights (the per-row accumulation order matches gemv exactly).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/aligned.hpp"
#include "tensor/matrix.hpp"
#include "tensor/precision.hpp"

namespace rtmobile {

class PackedDenseMatrix {
 public:
  PackedDenseMatrix() = default;

  /// Quantizes `weights` under `precision` (kFp32 rejected — keep the
  /// Matrix itself for fp32).
  [[nodiscard]] static PackedDenseMatrix pack(const Matrix& weights,
                                              WeightPrecision precision);

  [[nodiscard]] WeightPrecision precision() const { return precision_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }

  /// y = W x with fp32 accumulation.
  void gemv(std::span<const float> x, std::span<float> y) const;

  /// Rows [row_begin, row_end) only — the unit the threaded dense plan
  /// partitions across the pool.
  void gemv_rows(std::span<const float> x, std::span<float> y,
                 std::size_t row_begin, std::size_t row_end) const;

  /// Batched matmat over rows [row_begin, row_end): row b of X
  /// (b < batch) is an independent input vector and row b of Y receives
  /// (W X[b]) for those rows. Each weight row is streamed once for the
  /// whole batch; per-(row, stream) dots go through the same helpers as
  /// gemv_rows, so every stream's result is bit-identical to the
  /// per-vector path. X/Y may have extra trailing rows.
  void gemm_rows(const Matrix& x, Matrix& y, std::size_t batch,
                 std::size_t row_begin, std::size_t row_end) const;

  /// Same over int8-quantized activations (int8 weight storage only):
  /// codes multiply codes with exact int32 accumulation, dequantized
  /// once per (row, stream) as i32 * row_scale[r] * x.scale[b]. Within
  /// the activation grid's rounding slack of gemm_rows, not bitwise.
  void gemm_rows_q8(const QuantizedActivations& x, Matrix& y,
                    std::size_t batch, std::size_t row_begin,
                    std::size_t row_end) const;

  /// Dequantized dense reconstruction (for verification).
  [[nodiscard]] Matrix to_dense() const;

  /// Entries that dequantize to a nonzero value.
  [[nodiscard]] std::size_t count_nonzero() const;

  /// Values at their stored width plus scale overhead.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  WeightPrecision precision_ = WeightPrecision::kInt8PerTensor;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int8_t, AlignedAllocator<std::int8_t>> q8_;
  std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> f16_;
  std::vector<float, AlignedAllocator<float>> row_scale_;  // int8 only
};

}  // namespace rtmobile
