#include "tensor/precision.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

namespace rtmobile {

const char* to_string(WeightPrecision precision) {
  switch (precision) {
    case WeightPrecision::kFp32: return "fp32";
    case WeightPrecision::kFp16: return "fp16";
    case WeightPrecision::kInt8PerTensor: return "int8";
    case WeightPrecision::kInt8PerRow: return "int8/row";
  }
  return "?";
}

WeightPrecision weight_precision_from_string(const char* name) {
  if (std::strcmp(name, "fp32") == 0) return WeightPrecision::kFp32;
  if (std::strcmp(name, "fp16") == 0) return WeightPrecision::kFp16;
  if (std::strcmp(name, "int8") == 0) return WeightPrecision::kInt8PerTensor;
  if (std::strcmp(name, "int8/row") == 0 ||
      std::strcmp(name, "int8row") == 0) {
    return WeightPrecision::kInt8PerRow;
  }
  throw std::invalid_argument(std::string("unknown weight precision: ") +
                              name);
}

const char* to_string(ActivationPrecision precision) {
  switch (precision) {
    case ActivationPrecision::kFp32: return "fp32";
    case ActivationPrecision::kInt8: return "int8";
  }
  return "?";
}

ActivationPrecision activation_precision_from_string(const char* name) {
  if (std::strcmp(name, "fp32") == 0) return ActivationPrecision::kFp32;
  if (std::strcmp(name, "int8") == 0) return ActivationPrecision::kInt8;
  throw std::invalid_argument(std::string("unknown activation precision: ") +
                              name);
}

void QuantizedActivations::resize(std::size_t new_batch,
                                  std::size_t new_dim) {
  batch = new_batch;
  dim = new_dim;
  if (codes.size() < batch * dim) codes.resize(batch * dim);
  if (scale.size() < batch) scale.resize(batch);
}

void QuantizedActivations::quantize_row(std::size_t b,
                                        std::span<const float> x) {
  float max_abs = 0.0F;
  for (const float v : x) max_abs = std::max(max_abs, std::fabs(v));
  const float s = max_abs / kInt8CodeLimit;
  scale[b] = s;
  std::int8_t* out = codes.data() + b * dim;
  if (s == 0.0F) {
    std::fill(out, out + x.size(), std::int8_t{0});
    return;
  }
  // Branchless round-half-away-from-zero via copysign(0.5) + truncation,
  // with the code grid hit by one reciprocal multiply — the loop
  // auto-vectorizes, which matters because the fused step re-quantizes
  // every activation panel each timestep. Clamping first keeps the
  // truncating cast in range even when max_abs * inv rounds above 127.
  const float inv = kInt8CodeLimit / max_abs;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v =
        std::min(std::max(x[i] * inv, -kInt8CodeLimit), kInt8CodeLimit);
    out[i] = static_cast<std::int8_t>(
        static_cast<std::int32_t>(v + std::copysign(0.5F, v)));
  }
}

void QuantizedActivations::transpose(std::size_t active_batch) {
  const std::size_t padded = (active_batch + 7) & ~std::size_t{7};
  padded_batch = padded;
  if (tcodes.size() < dim * padded) tcodes.resize(dim * padded);
  for (std::size_t c = 0; c < dim; ++c) {
    std::int8_t* out = tcodes.data() + c * padded;
    for (std::size_t b = 0; b < active_batch; ++b) {
      out[b] = codes[b * dim + c];
    }
    std::fill(out + active_batch, out + padded, std::int8_t{0});
  }
}

std::size_t bytes_per_weight(WeightPrecision precision) {
  switch (precision) {
    case WeightPrecision::kFp32: return 4;
    case WeightPrecision::kFp16: return 2;
    case WeightPrecision::kInt8PerTensor:
    case WeightPrecision::kInt8PerRow:
      return 1;
  }
  return 4;
}

std::uint16_t fp16_from_float(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000U;
  const std::uint32_t exponent = (bits >> 23) & 0xFFU;
  std::uint32_t mantissa = bits & 0x7FFFFFU;

  if (exponent == 0xFFU) {
    // Inf / NaN: preserve NaN-ness with a quiet mantissa bit.
    return static_cast<std::uint16_t>(
        sign | 0x7C00U | (mantissa != 0 ? 0x0200U : 0U));
  }

  // Unbias from float (127) and rebias for half (15).
  const int half_exponent = static_cast<int>(exponent) - 127 + 15;
  if (half_exponent >= 0x1F) {
    // Overflow: round to infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00U);
  }
  if (half_exponent <= 0) {
    // Subnormal half (or underflow to zero). Shift the implicit leading 1
    // into the mantissa and denormalize.
    if (half_exponent < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x800000U;
    const int shift = 14 - half_exponent;  // 14..24
    const std::uint32_t rounded = mantissa >> shift;
    const std::uint32_t remainder = mantissa & ((1U << shift) - 1U);
    const std::uint32_t halfway = 1U << (shift - 1);
    std::uint32_t result = rounded;
    if (remainder > halfway || (remainder == halfway && (rounded & 1U))) {
      ++result;  // round to nearest even
    }
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normal half: keep 10 mantissa bits with round-to-nearest-even.
  std::uint32_t result =
      sign | (static_cast<std::uint32_t>(half_exponent) << 10) |
      (mantissa >> 13);
  const std::uint32_t remainder = mantissa & 0x1FFFU;
  if (remainder > 0x1000U || (remainder == 0x1000U && (result & 1U))) {
    ++result;  // may carry into the exponent — that is correct rounding
  }
  return static_cast<std::uint16_t>(result);
}

float fp16_to_float(std::uint16_t half_bits) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half_bits) & 0x8000U)
                             << 16;
  const std::uint32_t exponent = (half_bits >> 10) & 0x1FU;
  const std::uint32_t mantissa = half_bits & 0x3FFU;

  std::uint32_t bits;
  if (exponent == 0x1FU) {
    bits = sign | 0x7F800000U | (mantissa << 13);  // inf / nan
  } else if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half -> normalized float.
      int e = -1;
      std::uint32_t m = mantissa;
      while ((m & 0x400U) == 0) {
        m <<= 1;
        ++e;
      }
      m &= 0x3FFU;
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             (m << 13);
    }
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

float fp16_round_trip(float value) {
  return fp16_to_float(fp16_from_float(value));
}

}  // namespace rtmobile
