#include "tensor/precision.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace rtmobile {

const char* to_string(WeightPrecision precision) {
  switch (precision) {
    case WeightPrecision::kFp32: return "fp32";
    case WeightPrecision::kFp16: return "fp16";
    case WeightPrecision::kInt8PerTensor: return "int8";
    case WeightPrecision::kInt8PerRow: return "int8/row";
  }
  return "?";
}

WeightPrecision weight_precision_from_string(const char* name) {
  if (std::strcmp(name, "fp32") == 0) return WeightPrecision::kFp32;
  if (std::strcmp(name, "fp16") == 0) return WeightPrecision::kFp16;
  if (std::strcmp(name, "int8") == 0) return WeightPrecision::kInt8PerTensor;
  if (std::strcmp(name, "int8/row") == 0 ||
      std::strcmp(name, "int8row") == 0) {
    return WeightPrecision::kInt8PerRow;
  }
  throw std::invalid_argument(std::string("unknown weight precision: ") +
                              name);
}

std::size_t bytes_per_weight(WeightPrecision precision) {
  switch (precision) {
    case WeightPrecision::kFp32: return 4;
    case WeightPrecision::kFp16: return 2;
    case WeightPrecision::kInt8PerTensor:
    case WeightPrecision::kInt8PerRow:
      return 1;
  }
  return 4;
}

std::uint16_t fp16_from_float(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000U;
  const std::uint32_t exponent = (bits >> 23) & 0xFFU;
  std::uint32_t mantissa = bits & 0x7FFFFFU;

  if (exponent == 0xFFU) {
    // Inf / NaN: preserve NaN-ness with a quiet mantissa bit.
    return static_cast<std::uint16_t>(
        sign | 0x7C00U | (mantissa != 0 ? 0x0200U : 0U));
  }

  // Unbias from float (127) and rebias for half (15).
  const int half_exponent = static_cast<int>(exponent) - 127 + 15;
  if (half_exponent >= 0x1F) {
    // Overflow: round to infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00U);
  }
  if (half_exponent <= 0) {
    // Subnormal half (or underflow to zero). Shift the implicit leading 1
    // into the mantissa and denormalize.
    if (half_exponent < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x800000U;
    const int shift = 14 - half_exponent;  // 14..24
    const std::uint32_t rounded = mantissa >> shift;
    const std::uint32_t remainder = mantissa & ((1U << shift) - 1U);
    const std::uint32_t halfway = 1U << (shift - 1);
    std::uint32_t result = rounded;
    if (remainder > halfway || (remainder == halfway && (rounded & 1U))) {
      ++result;  // round to nearest even
    }
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normal half: keep 10 mantissa bits with round-to-nearest-even.
  std::uint32_t result =
      sign | (static_cast<std::uint32_t>(half_exponent) << 10) |
      (mantissa >> 13);
  const std::uint32_t remainder = mantissa & 0x1FFFU;
  if (remainder > 0x1000U || (remainder == 0x1000U && (result & 1U))) {
    ++result;  // may carry into the exponent — that is correct rounding
  }
  return static_cast<std::uint16_t>(result);
}

float fp16_to_float(std::uint16_t half_bits) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half_bits) & 0x8000U)
                             << 16;
  const std::uint32_t exponent = (half_bits >> 10) & 0x1FU;
  const std::uint32_t mantissa = half_bits & 0x3FFU;

  std::uint32_t bits;
  if (exponent == 0x1FU) {
    bits = sign | 0x7F800000U | (mantissa << 13);  // inf / nan
  } else if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half -> normalized float.
      int e = -1;
      std::uint32_t m = mantissa;
      while ((m & 0x400U) == 0) {
        m <<= 1;
        ++e;
      }
      m &= 0x3FFU;
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             (m << 13);
    }
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

float fp16_round_trip(float value) {
  return fp16_to_float(fp16_from_float(value));
}

}  // namespace rtmobile
