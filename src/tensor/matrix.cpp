#include "tensor/matrix.hpp"

#include <cmath>

namespace rtmobile {

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = (*this)(r, c);
    }
  }
  return out;
}

std::size_t Matrix::count_nonzero(float threshold) const {
  std::size_t count = 0;
  for (const float w : data_) {
    if (std::fabs(w) > threshold) ++count;
  }
  return count;
}

}  // namespace rtmobile
