#include "tensor/gemm.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmobile {
namespace {

void require_gemv_shapes(const Matrix& w, std::span<const float> x,
                         std::span<float> y) {
  RT_REQUIRE(w.cols() == x.size(), "gemv: W.cols must equal x.size");
  RT_REQUIRE(w.rows() == y.size(), "gemv: W.rows must equal y.size");
}

}  // namespace

void gemv_naive(const Matrix& w, std::span<const float> x,
                std::span<float> y) {
  require_gemv_shapes(w, x, y);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    double acc = 0.0;
    const float* row = w.data() + r * w.cols();
    for (std::size_t c = 0; c < w.cols(); ++c) {
      acc += static_cast<double>(row[c]) * static_cast<double>(x[c]);
    }
    y[r] = static_cast<float>(acc);
  }
}

void gemv(const Matrix& w, std::span<const float> x, std::span<float> y) {
  require_gemv_shapes(w, x, y);
  const std::size_t rows = w.rows();
  const std::size_t cols = w.cols();
  const float* base = w.data();
  std::size_t r = 0;
  // Process four rows at a time so the x vector is streamed once per
  // group of rows instead of once per row.
  for (; r + 4 <= rows; r += 4) {
    const float* row0 = base + (r + 0) * cols;
    const float* row1 = base + (r + 1) * cols;
    const float* row2 = base + (r + 2) * cols;
    const float* row3 = base + (r + 3) * cols;
    float acc0 = 0.0F;
    float acc1 = 0.0F;
    float acc2 = 0.0F;
    float acc3 = 0.0F;
    for (std::size_t c = 0; c < cols; ++c) {
      const float xv = x[c];
      acc0 += row0[c] * xv;
      acc1 += row1[c] * xv;
      acc2 += row2[c] * xv;
      acc3 += row3[c] * xv;
    }
    y[r + 0] = acc0;
    y[r + 1] = acc1;
    y[r + 2] = acc2;
    y[r + 3] = acc3;
  }
  for (; r < rows; ++r) {
    const float* row = base + r * cols;
    float acc = 0.0F;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void gemv_accumulate(const Matrix& w, std::span<const float> x,
                     std::span<float> y) {
  require_gemv_shapes(w, x, y);
  const std::size_t cols = w.cols();
  const float* base = w.data();
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const float* row = base + r * cols;
    float acc = 0.0F;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] += acc;
  }
}

void gemv_transposed(const Matrix& w, std::span<const float> x,
                     std::span<float> y) {
  RT_REQUIRE(w.rows() == x.size(), "gemv_transposed: W.rows must equal x.size");
  RT_REQUIRE(w.cols() == y.size(), "gemv_transposed: W.cols must equal y.size");
  std::fill(y.begin(), y.end(), 0.0F);
  gemv_transposed_accumulate(w, x, y);
}

void gemv_transposed_accumulate(const Matrix& w, std::span<const float> x,
                                std::span<float> y) {
  RT_REQUIRE(w.rows() == x.size(), "gemv_transposed: W.rows must equal x.size");
  RT_REQUIRE(w.cols() == y.size(), "gemv_transposed: W.cols must equal y.size");
  const std::size_t cols = w.cols();
  const float* base = w.data();
  // Row-major friendly order: scale each row of W by x[r] and accumulate.
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const float xv = x[r];
    if (xv == 0.0F) continue;
    const float* row = base + r * cols;
    for (std::size_t c = 0; c < cols; ++c) y[c] += xv * row[c];
  }
}

void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  RT_REQUIRE(a.cols() == b.rows(), "gemm: inner dimensions must match");
  RT_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
             "gemm: output shape mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a(i, k)) * static_cast<double>(b(k, j));
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  RT_REQUIRE(a.cols() == b.rows(), "gemm: inner dimensions must match");
  RT_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
             "gemm: output shape mismatch");
  c.fill(0.0F);
  constexpr std::size_t kBlock = 64;
  const std::size_t m = a.rows();
  const std::size_t n = b.cols();
  const std::size_t kk = a.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::size_t i1 = std::min(i0 + kBlock, m);
    for (std::size_t k0 = 0; k0 < kk; k0 += kBlock) {
      const std::size_t k1 = std::min(k0 + kBlock, kk);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t k = k0; k < k1; ++k) {
          const float aik = a(i, k);
          if (aik == 0.0F) continue;
          const float* brow = b.data() + k * n;
          float* crow = c.data() + i * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void outer_accumulate(float alpha, std::span<const float> u,
                      std::span<const float> v, Matrix& w) {
  RT_REQUIRE(w.rows() == u.size() && w.cols() == v.size(),
             "outer_accumulate: shape mismatch");
  for (std::size_t r = 0; r < u.size(); ++r) {
    const float scale = alpha * u[r];
    if (scale == 0.0F) continue;
    float* row = w.data() + r * w.cols();
    for (std::size_t c = 0; c < v.size(); ++c) row[c] += scale * v[c];
  }
}

}  // namespace rtmobile
