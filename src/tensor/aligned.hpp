// Cache-line-aligned allocator for numeric buffers.
//
// Kernels in src/compiler assume 64-byte alignment so the compiler can
// vectorize loads without peeling; every Matrix/Vector buffer uses this
// allocator.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

namespace rtmobile {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal C++17-style allocator returning 64-byte-aligned storage.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t count) {
    if (count == 0) return nullptr;
    const std::size_t bytes =
        ((count * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes) *
        kCacheLineBytes;
    void* ptr = std::aligned_alloc(kCacheLineBytes, bytes);
    if (ptr == nullptr) throw std::bad_alloc();
    return static_cast<T*>(ptr);
  }

  void deallocate(T* ptr, std::size_t /*count*/) noexcept { std::free(ptr); }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace rtmobile
