// Elementwise vector operations and activations used by the RNN cells,
// the training stack, and the speech front end.
//
// All functions take spans (I.13) and require matching sizes; kernels are
// written as plain loops that GCC/Clang auto-vectorize at -O3.
#pragma once

#include <span>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace rtmobile {

/// Numerically-stable logistic sigmoid.
[[nodiscard]] float sigmoid(float x);

/// Derivative of sigmoid expressed via its output y = sigmoid(x).
[[nodiscard]] float sigmoid_grad_from_output(float y);

/// Derivative of tanh expressed via its output y = tanh(x).
[[nodiscard]] float tanh_grad_from_output(float y);

/// out[i] = sigmoid(in[i])
void sigmoid_inplace(std::span<float> values);

/// out[i] = tanh(in[i])
void tanh_inplace(std::span<float> values);

/// out[i] = a[i] + b[i]
void add(std::span<const float> a, std::span<const float> b,
         std::span<float> out);

/// a[i] += b[i]
void add_inplace(std::span<float> a, std::span<const float> b);

/// out[i] = a[i] - b[i]
void sub(std::span<const float> a, std::span<const float> b,
         std::span<float> out);

/// out[i] = a[i] * b[i] (Hadamard product)
void mul(std::span<const float> a, std::span<const float> b,
         std::span<float> out);

/// a[i] *= b[i]
void mul_inplace(std::span<float> a, std::span<const float> b);

/// y[i] += alpha * x[i]
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// values[i] *= alpha
void scale_inplace(std::span<float> values, float alpha);

/// Dot product (accumulated in double for stability).
[[nodiscard]] double dot(std::span<const float> a, std::span<const float> b);

/// Euclidean norm (accumulated in double).
[[nodiscard]] double norm2(std::span<const float> values);

/// Sum of elements (accumulated in double).
[[nodiscard]] double sum(std::span<const float> values);

/// Index of the maximum element. Span must be non-empty.
[[nodiscard]] std::size_t argmax(std::span<const float> values);

/// In-place softmax with max-subtraction for stability.
void softmax_inplace(std::span<float> values);

/// log(softmax(values)) written into `out` (stable log-sum-exp).
void log_softmax(std::span<const float> values, std::span<float> out);

/// Fills with N(0, stddev) draws.
void fill_normal(std::span<float> values, Rng& rng, float stddev);

/// Fills with U(-bound, bound) draws.
void fill_uniform(std::span<float> values, Rng& rng, float bound);

/// Xavier/Glorot uniform init for a weight matrix (fan_in, fan_out derived
/// from the matrix shape: rows = outputs, cols = inputs).
void xavier_init(Matrix& weights, Rng& rng);

/// Orthogonal-ish init used for recurrent matrices: Xavier followed by row
/// normalization, which keeps the spectral radius near 1 for stable BPTT.
void recurrent_init(Matrix& weights, Rng& rng);

/// Max |a[i] - b[i]| over the spans (sizes must match).
[[nodiscard]] float max_abs_diff(std::span<const float> a,
                                 std::span<const float> b);

}  // namespace rtmobile
