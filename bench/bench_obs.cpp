// Observability overhead benchmark: prices the instrumentation added in
// src/obs/ against the bare serving path.
//
// Two measurements:
//
//  1. Frame-path overhead (the headline): the bench_streaming serving
//     loop — N concurrent streams through a LocalRecognizer — run twice
//     per repetition, once with EngineConfig::telemetry unset and once
//     wired to a live Telemetry (counters, histograms, RT_SPAN timers
//     all active). The arms run back-to-back within each repetition
//     and the reported overhead is the median of the per-repetition
//     throughput ratios, so machine noise mostly cancels. The
//     acceptance target is <1% throughput loss.
//
//  2. Micro costs: ns/op for one Counter::add, one Histogram::observe,
//     one open/close RT_SPAN, and the wall cost of rendering a
//     /metrics scrape — the numbers that justify "per-frame budget is
//     a rounding error" in the README's overhead method writeup.
//
// Results land in obs.json (a CI artifact) so overhead regressions are
// diffable across runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "runtime/inference_engine.hpp"
#include "serve/local_recognizer.hpp"
#include "sparse/block_mask.hpp"
#include "train/projection.hpp"
#include "util/cli.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

struct BenchSetup {
  std::unique_ptr<SpeechModel> model;
  std::unique_ptr<CompiledSpeechModel> compiled;
};

BenchSetup build_model(std::size_t hidden, double keep_fraction) {
  BenchSetup setup;
  Rng rng(1234);
  setup.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  setup.model->init(rng);
  std::map<std::string, BlockMask> masks;
  ParamSet params;
  setup.model->register_params(params);
  for (const std::string& name : setup.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 8, 4, keep_fraction);
    mask.apply(w);
    masks.emplace(name, std::move(mask));
  }
  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  setup.compiled = std::make_unique<CompiledSpeechModel>(
      *setup.model, masks, options, nullptr);
  return setup;
}

std::vector<float> make_waveform(double seconds, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(static_cast<std::size_t>(seconds * 16000.0));
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

/// One serving run (the bench_streaming frame path): all audio pushed up
/// front, recognizer drained. `telemetry` null = the bare arm.
runtime::RuntimeStats run_serving(const BenchSetup& setup,
                                  std::size_t streams, double seconds,
                                  obs::Telemetry* telemetry) {
  runtime::EngineConfig engine_config;
  engine_config.telemetry = telemetry;
  serve::LocalRecognizer recognizer(*setup.compiled, engine_config);
  std::vector<serve::StreamHandle> handles;
  for (std::size_t s = 0; s < streams; ++s) {
    handles.push_back(recognizer.open_stream());
    const std::vector<float> wave = make_waveform(seconds, 9000 + s);
    (void)recognizer.submit_audio(handles[s], wave);
    (void)recognizer.finish_stream(handles[s]);
  }
  recognizer.drain();
  return recognizer.engine().stats();
}

[[nodiscard]] double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("hidden", "256", "GRU hidden size of the served model");
  cli.add_flag("streams", "8", "concurrent streams on the frame path");
  cli.add_flag("seconds", "4", "audio seconds per stream");
  cli.add_flag("reps", "5", "paired repetitions (median ratio wins)");
  cli.add_flag("keep", "0.25", "BSP column keep fraction");
  cli.add_switch("quick", "small model + short audio (CI smoke run; "
                          "overrides --hidden, --seconds, --reps)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help("bench_obs").c_str());
    return 1;
  }
  const bool quick = cli.get_switch("quick");
  const std::size_t hidden =
      quick ? 96 : static_cast<std::size_t>(cli.get_int("hidden"));
  const double seconds = quick ? 0.5 : cli.get_double("seconds");
  const std::size_t reps =
      quick ? 3 : static_cast<std::size_t>(cli.get_int("reps"));
  const std::size_t streams =
      static_cast<std::size_t>(cli.get_int("streams"));
  const double keep = cli.get_double("keep");

  std::printf(
      "Observability overhead: hidden=%zu streams=%zu audio=%.1fs/stream "
      "reps=%zu%s\n\n",
      hidden, streams, seconds, reps, quick ? " (quick)" : "");

  const BenchSetup setup = build_model(hidden, keep);
  JsonReport report;

  // ---- frame-path overhead: bare vs instrumented, paired ----
  // Machine noise (CPU frequency drift, container neighbors) moves
  // whole-run throughput by several percent — far more than the cost
  // being measured. So the arms run back-to-back within each
  // repetition (they see the same machine state) and the estimate is
  // the MEDIAN of the per-repetition ratios, which a single slow run
  // cannot drag. p50 step latency is compared the same way as a
  // second, excursion-robust view of the same question.
  (void)run_serving(setup, streams, seconds, nullptr);  // warm-up
  std::vector<double> fps_ratios;
  std::vector<double> p50_ratios;
  double bare_fps = 0.0;
  double instrumented_fps = 0.0;
  std::size_t frames = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const runtime::RuntimeStats bare =
        run_serving(setup, streams, seconds, nullptr);
    obs::Telemetry telemetry;
    const runtime::RuntimeStats instrumented =
        run_serving(setup, streams, seconds, &telemetry);
    fps_ratios.push_back(bare.frames_per_second() /
                         instrumented.frames_per_second());
    p50_ratios.push_back(instrumented.step_latency.p50_us() /
                         bare.step_latency.p50_us());
    bare_fps = std::max(bare_fps, bare.frames_per_second());
    instrumented_fps =
        std::max(instrumented_fps, instrumented.frames_per_second());
    frames = bare.frames_processed;
  }
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double overhead_pct = (median(fps_ratios) - 1.0) * 100.0;
  const double p50_overhead_pct = (median(p50_ratios) - 1.0) * 100.0;

  Table table({"arm", "frames", "best frames/s"});
  table.add_row({"bare", std::to_string(frames),
                 format_double(bare_fps, 0)});
  table.add_row({"instrumented", std::to_string(frames),
                 format_double(instrumented_fps, 0)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "throughput overhead (median of %zu paired ratios): %.2f%%\n"
      "p50 step latency overhead (same pairing):          %.2f%%\n"
      "Target: < 1%% with counters + histograms + spans all live.\n\n",
      reps, overhead_pct, p50_overhead_pct);

  JsonRecord overhead;
  overhead.set("section", "frame_path_overhead");
  overhead.set("hidden", static_cast<std::int64_t>(hidden));
  overhead.set("streams", static_cast<std::int64_t>(streams));
  overhead.set("reps", static_cast<std::int64_t>(reps));
  overhead.set("frames", static_cast<std::int64_t>(frames));
  overhead.set("bare_frames_per_sec", bare_fps);
  overhead.set("instrumented_frames_per_sec", instrumented_fps);
  overhead.set("overhead_pct", overhead_pct);
  overhead.set("p50_overhead_pct", p50_overhead_pct);
  report.add(std::move(overhead));

  // ---- micro costs ----
  Table micro_table({"op", "iters", "ns/op"});
  const auto time_op = [&](const char* name, std::size_t iters,
                           const auto& op) {
    const double start = now_seconds();
    for (std::size_t i = 0; i < iters; ++i) op(i);
    const double ns_per_op =
        (now_seconds() - start) * 1e9 / static_cast<double>(iters);
    micro_table.add_row({name, std::to_string(iters),
                         format_double(ns_per_op, 1)});
    JsonRecord record;
    record.set("section", "micro");
    record.set("op", name);
    record.set("iters", static_cast<std::int64_t>(iters));
    record.set("ns_per_op", ns_per_op);
    report.add(std::move(record));
    return ns_per_op;
  };

  const std::size_t micro_iters = quick ? 1'000'000 : 10'000'000;
  obs::Telemetry telemetry;
  obs::Counter& counter =
      telemetry.registry().counter("bench_ops_total", "micro bench");
  obs::Histogram& histogram = telemetry.registry().histogram(
      "bench_lat_us", "micro bench", obs::default_latency_buckets_us());
  time_op("counter_add", micro_iters,
          [&counter](std::size_t) { counter.add(1); });
  time_op("histogram_observe", micro_iters, [&histogram](std::size_t i) {
    histogram.observe(static_cast<double>(i % 4096));
  });
  time_op("span_open_close", micro_iters / 10,
          [&telemetry](std::size_t i) {
            RT_SPAN(&telemetry.trace(), kLayerStep,
                    static_cast<std::uint64_t>(i % 16));
          });
  // A scrape renders every registered family plus the stage samples —
  // the cost a /metrics poller imposes on the serving process.
  time_op("render_prometheus", quick ? 200 : 2000,
          [&telemetry](std::size_t) {
            const std::string text = telemetry.render_prometheus();
            if (text.empty()) std::abort();  // keep the render live
          });
  std::printf("%s\n", micro_table.to_string().c_str());

  report.write_file("obs.json");
  std::printf("wrote obs.json (%zu records)\n", report.size());
  return 0;
}
