// Fault-tolerance benchmark: what does losing a shard actually cost?
//
// Two numbers summarise the supervision design. Failover latency — the
// wall time from the instant an injected fault kills a shard pump to the
// supervisor completing quarantine + migration (every victim stream
// re-homed on a healthy sibling) — bounds how long clients on the dead
// shard stall. Recovered throughput — the aggregate real-time factor of
// a run that loses a shard mid-flight, next to an undisturbed baseline —
// shows the serving capacity the survivors deliver while the dead
// shard's streams are replayed from their command logs.
//
// The kill is a deterministic FaultInjector schedule (nth pump round on
// a chosen shard), so trials are replayable; latency is reported over
// `--trials` independent runs. Results land in fault.json (a CI
// artifact).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_injector.hpp"
#include "hw/timer.hpp"
#include "obs/telemetry.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "serve/sharded_engine.hpp"
#include "sparse/block_mask.hpp"
#include "train/projection.hpp"
#include "util/cli.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using fault::Site;
using fault::Trigger;
using serve::ShardConfig;
using serve::ShardedEngine;
using serve::ShardHealth;
using serve::StreamConfig;
using serve::StreamHandle;

struct BenchModel {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
  CompilerOptions options;
};

BenchModel build_model(std::size_t hidden, double keep_fraction) {
  BenchModel m;
  Rng rng(1234);
  m.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  m.model->init(rng);
  ParamSet params;
  m.model->register_params(params);
  for (const std::string& name : m.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 8, 4, keep_fraction);
    mask.apply(w);
    m.masks.emplace(name, std::move(mask));
  }
  m.options.format = SparseFormat::kBspc;
  return m;
}

std::vector<std::vector<float>> make_waves(std::size_t streams,
                                           double seconds) {
  std::vector<std::vector<float>> waves;
  for (std::size_t s = 0; s < streams; ++s) {
    Rng rng(4000 + s);
    std::vector<float> wave(static_cast<std::size_t>(seconds * 16000.0));
    for (float& sample : wave) sample = 0.1F * rng.normal();
    waves.push_back(std::move(wave));
  }
  return waves;
}

struct RunResult {
  double wall_seconds = 0.0;
  double fault_to_failed_ms = -1.0;   // injected fire -> shard kFailed
  std::size_t replayed_streams = 0;
  std::size_t migrated_commands = 0;  // telemetry: detected faults
};

/// One full serve of `waves` on a threaded sharded engine. When `kill`
/// is set, shard `victim`'s pump dies on its nth round and the run rides
/// through the failover; a watcher thread timestamps injection and the
/// supervisor's kFailed transition at 50 us polling granularity.
RunResult run_workload(const BenchModel& m, std::size_t shards,
                       const std::vector<std::vector<float>>& waves,
                       bool kill) {
  obs::Telemetry telemetry;
  FaultInjector injector(&telemetry);
  ShardConfig config;
  config.shards = shards;
  config.policy = serve::RoutePolicy::kRoundRobin;
  config.engine.fault = &injector;
  config.engine.telemetry = &telemetry;
  config.supervisor.enabled = true;
  config.supervisor.check_interval = std::chrono::milliseconds(1);
  ShardedEngine engine(*m.model, m.masks, m.options, config);

  std::vector<StreamHandle> handles;
  for (std::size_t s = 0; s < waves.size(); ++s) {
    handles.push_back(engine.open_stream(StreamConfig{}));
  }
  const std::size_t victim = engine.stream_shard(handles[0]);
  if (kill) {
    FaultSpec death;
    death.trigger = Trigger::nth_hit(8);  // mid-utterance, deterministic
    death.key = victim;
    injector.arm(Site::kPumpFault, death);
  }

  WallTimer timer;
  engine.start();

  std::atomic<double> fire_us{-1.0};
  std::atomic<double> failed_us{-1.0};
  std::atomic<bool> stop_watch{false};
  std::thread watcher([&] {
    if (!kill) return;
    while (!stop_watch.load(std::memory_order_acquire)) {
      if (fire_us.load(std::memory_order_relaxed) < 0.0 &&
          injector.fires(Site::kPumpFault) > 0) {
        fire_us.store(timer.elapsed_us(), std::memory_order_relaxed);
      }
      if (fire_us.load(std::memory_order_relaxed) >= 0.0 &&
          engine.shard_health(victim) == ShardHealth::kFailed) {
        failed_us.store(timer.elapsed_us(), std::memory_order_relaxed);
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < waves.size(); ++s) {
    producers.emplace_back([&engine, &waves, &handles, s] {
      const std::vector<float>& wave = waves[s];
      for (std::size_t pos = 0; pos < wave.size(); pos += 1600) {
        const std::size_t n =
            std::min<std::size_t>(1600, wave.size() - pos);
        while (!engine.submit_audio(
            handles[s], std::span<const float>(wave).subspan(pos, n))) {
          std::this_thread::yield();
        }
      }
      while (!engine.finish_stream(handles[s])) std::this_thread::yield();
    });
  }
  for (std::thread& t : producers) t.join();
  for (const StreamHandle h : handles) {
    while (!engine.stream_done(h)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  RunResult result;
  result.wall_seconds = timer.elapsed_us() * 1e-6;
  stop_watch.store(true, std::memory_order_release);
  watcher.join();
  engine.stop();

  if (kill && fire_us.load() >= 0.0 && failed_us.load() >= 0.0) {
    result.fault_to_failed_ms =
        (failed_us.load() - fire_us.load()) * 1e-3;
  }
  result.replayed_streams = telemetry.fault().replayed_streams->value();
  result.migrated_commands = telemetry.fault().detected->value();
  return result;
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("hidden", "192", "GRU hidden size of the served model");
  cli.add_flag("shards", "2", "engine shards (one pump thread each)");
  cli.add_flag("streams", "8", "concurrent streams");
  cli.add_flag("seconds", "2", "audio per stream (seconds)");
  cli.add_flag("trials", "5", "independent failover trials");
  cli.add_flag("keep", "0.25", "BSP column keep fraction");
  cli.add_switch("quick", "small model + short audio (CI smoke run; "
                          "overrides --hidden, --seconds and --trials)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help("bench_fault").c_str());
    return 1;
  }

  const bool quick = cli.get_switch("quick");
  const std::size_t hidden =
      quick ? 64 : static_cast<std::size_t>(cli.get_int("hidden"));
  const double seconds = quick ? 0.5 : cli.get_double("seconds");
  const std::size_t trials =
      quick ? 2 : static_cast<std::size_t>(cli.get_int("trials"));
  const std::size_t shards =
      static_cast<std::size_t>(cli.get_int("shards"));
  const std::size_t streams =
      static_cast<std::size_t>(cli.get_int("streams"));
  const double keep = cli.get_double("keep");

  const BenchModel m = build_model(hidden, keep);
  const std::vector<std::vector<float>> waves = make_waves(streams, seconds);
  const double audio_seconds = seconds * static_cast<double>(streams);

  std::printf(
      "Fault tolerance: hidden=%zu shards=%zu streams=%zu "
      "audio=%.1fs/stream trials=%zu%s\n\n",
      hidden, shards, streams, seconds, trials, quick ? " (quick)" : "");

  // Baseline: same workload, nobody dies.
  const RunResult baseline = run_workload(m, shards, waves, /*kill=*/false);
  const double baseline_xrt = audio_seconds / baseline.wall_seconds;

  std::vector<double> failover_ms;
  std::vector<double> recovered_xrt;
  std::size_t replayed = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const RunResult r = run_workload(m, shards, waves, /*kill=*/true);
    if (r.fault_to_failed_ms >= 0.0) failover_ms.push_back(r.fault_to_failed_ms);
    recovered_xrt.push_back(audio_seconds / r.wall_seconds);
    replayed += r.replayed_streams;
  }
  const double med_failover = median(failover_ms);
  const double med_recovered = median(recovered_xrt);

  Table table({"scenario", "xRT", "vs baseline", "failover ms (median)",
               "replayed streams"});
  table.add_row({"undisturbed", format_double(baseline_xrt, 2), "1.00",
                 "-", "0"});
  table.add_row(
      {"shard killed", format_double(med_recovered, 2),
       format_double(med_recovered / baseline_xrt, 2),
       format_double(med_failover, 2),
       std::to_string(replayed / std::max<std::size_t>(1, trials))});
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "failover ms = injected pump death -> supervisor completes "
      "quarantine + migration (all victim streams re-homed); xRT = "
      "aggregate audio seconds served per wall second, including the "
      "replay of migrated streams on the surviving shards.\n");

  JsonReport report;
  JsonRecord base_record;
  base_record.set("section", "fault");
  base_record.set("scenario", "baseline");
  base_record.set("shards", static_cast<std::int64_t>(shards));
  base_record.set("streams", static_cast<std::int64_t>(streams));
  base_record.set("audio_seconds", audio_seconds);
  base_record.set("wall_seconds", baseline.wall_seconds);
  base_record.set("throughput_xrt", baseline_xrt);
  report.add(std::move(base_record));

  JsonRecord kill_record;
  kill_record.set("section", "fault");
  kill_record.set("scenario", "shard_killed");
  kill_record.set("shards", static_cast<std::int64_t>(shards));
  kill_record.set("streams", static_cast<std::int64_t>(streams));
  kill_record.set("trials", static_cast<std::int64_t>(trials));
  kill_record.set("audio_seconds", audio_seconds);
  kill_record.set("failover_ms_median", med_failover);
  kill_record.set("throughput_xrt_median", med_recovered);
  kill_record.set("throughput_vs_baseline", med_recovered / baseline_xrt);
  kill_record.set("replayed_streams_total",
                  static_cast<std::int64_t>(replayed));
  report.add(std::move(kill_record));

  report.write_file("fault.json");
  std::printf("wrote fault.json (%zu records)\n", report.size());
  return 0;
}
