// GRU-vs-LSTM motivation ablation (paper Sec. II-A: "The resulting GRU
// model is simpler than standard LSTM models ... As GRU is a more advanced
// version of RNN than LSTM, we mainly focus on GRU").
//
// Same hidden width, same corpus, same training budget: compares parameter
// count, training outcome, PER, and dense inference time per frame.
#include <cstdio>

#include "hw/timer.hpp"
#include "rnn/lstm_model.hpp"
#include "rnn/model.hpp"
#include "speech/corpus.hpp"
#include "speech/per.hpp"
#include "train/trainer.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

struct CellResult {
  std::size_t params = 0;
  double final_loss = 0.0;
  double frame_accuracy = 0.0;
  double per = 0.0;
  double infer_us_per_frame = 0.0;
};

template <typename Model>
CellResult run_cell(const speech::Corpus& corpus, std::size_t hidden) {
  ModelConfig config;
  config.input_dim = 39;
  config.hidden_dim = hidden;
  config.num_layers = 2;
  config.num_classes = 39;
  Model model(config);
  Rng rng(29);
  model.init(rng);

  CellResult result;
  result.params = model.param_count();

  BasicTrainer<Model> trainer(model);
  Adam adam(4e-3);
  TrainConfig train_config;
  train_config.epochs = 10;
  train_config.lr_decay = 0.92;
  result.final_loss = trainer.train(train_config, corpus.train, adam, rng);
  const EvalResult eval =
      BasicTrainer<Model>::evaluate(model, corpus.test);
  result.frame_accuracy = eval.frame_accuracy;

  // PER via the shared decode path.
  speech::EditStats edits;
  std::size_t frames = 0;
  WallTimer timer;
  for (const auto& utt : corpus.test) {
    const Matrix logits = model.forward(utt.features);
    frames += logits.rows();
    const auto decoded = speech::greedy_decode(logits);
    edits += speech::align({utt.phones.data(), utt.phones.size()},
                           {decoded.data(), decoded.size()});
  }
  result.infer_us_per_frame =
      timer.elapsed_us() / static_cast<double>(frames);
  result.per = edits.rate() * 100.0;
  return result;
}

}  // namespace
}  // namespace rtmobile

int main() {
  using namespace rtmobile;
  std::printf("== GRU vs LSTM at equal width (motivation ablation) ==\n\n");

  speech::CorpusConfig corpus_config;
  corpus_config.num_train_utterances = 32;
  corpus_config.num_test_utterances = 12;
  corpus_config.feature_noise = 0.55;
  corpus_config.seed = 21;
  const speech::Corpus corpus =
      speech::SyntheticTimit(corpus_config).generate();

  Table table({"cell", "hidden", "params", "final loss", "frame acc",
               "PER", "infer us/frame"});
  JsonReport report;
  for (const std::size_t hidden : {48U, 96U}) {
    const CellResult gru = run_cell<SpeechModel>(corpus, hidden);
    const CellResult lstm = run_cell<LstmModel>(corpus, hidden);
    const auto add = [&](const char* cell, const CellResult& r) {
      table.add_row({cell, std::to_string(hidden),
                     format_si(static_cast<double>(r.params), 2),
                     format_double(r.final_loss, 4),
                     format_percent(r.frame_accuracy, 1),
                     format_double(r.per, 2),
                     format_double(r.infer_us_per_frame, 1)});
      JsonRecord record;
      record.set("experiment", "gru_vs_lstm");
      record.set("cell", cell);
      record.set("hidden", static_cast<std::int64_t>(hidden));
      record.set("params", static_cast<std::int64_t>(r.params));
      record.set("per", r.per);
      record.set("infer_us_per_frame", r.infer_us_per_frame);
      report.add(record);
    };
    add("GRU", gru);
    add("LSTM", lstm);
    if (hidden != 96U) table.add_separator();
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation (paper Sec. II-A): GRU matches LSTM accuracy with 3/4\n"
      "of the recurrent parameters and correspondingly cheaper inference.\n");
  report.write_file("gru_vs_lstm.json");
  return 0;
}
