// Shard-count sweep for the sharded serving layer.
//
// A fixed population of concurrent streams is served by 1, 2, ... N
// engine replicas; shard count 1 is exactly the PR-1 single-engine
// deployment, so every later row reads as "what replication buys".
// `aggregate_fps` follows the runtime's stats convention (summed
// real-time factor): it sums each shard's frames per compute second —
// fleet capacity when every replica owns its disjoint core range, which
// is what the pin-cores hint arranges in a real deployment. Speedup is
// aggregate_fps versus the 1-shard row.
//
// Two measurement modes, because a shared benchmark host can lie:
//  - capacity (default): audio is routed through the MPSC ingress as
//    usual, then each shard drains to completion *in isolation*
//    (synchronous pumping, one shard at a time). Per-shard compute time
//    is then uncontended, so aggregate_fps is exactly what S pinned
//    replicas sustain. Deterministic on any host.
//  - wall: one pump thread per shard, audio submitted chunk-by-chunk
//    with ingress backpressure, everything concurrent. wall_fps (total
//    frames over the wall window) is what THIS host actually serves;
//    when the host has fewer free cores than shards the pumps time-share
//    and per-step latency inflates with preemption — that contention is
//    the measurement.
//
// Output is a single JSON object on stdout (machine-readable sweep
// artifact); the human-readable table goes to stderr.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "serve/sharded_engine.hpp"
#include "sparse/block_mask.hpp"
#include "train/projection.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

struct Workload {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
  CompilerOptions options;
  std::vector<std::vector<float>> waves;  // one utterance per stream
};

Workload build_workload(std::size_t hidden, double keep_fraction,
                        std::size_t streams, double seconds) {
  Workload w;
  Rng rng(1234);
  w.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  w.model->init(rng);

  ParamSet params;
  w.model->register_params(params);
  for (const std::string& name : w.model->weight_names()) {
    Matrix& weights = params.matrix(name);
    BlockMask mask = block_column_mask(weights, 8, 4, keep_fraction);
    mask.apply(weights);
    w.masks.emplace(name, std::move(mask));
  }
  w.options.format = SparseFormat::kBspc;

  for (std::size_t s = 0; s < streams; ++s) {
    Rng wave_rng(9000 + s);
    std::vector<float> wave(static_cast<std::size_t>(seconds * 16000.0));
    for (float& sample : wave) sample = 0.1F * wave_rng.normal();
    w.waves.push_back(std::move(wave));
  }
  return w;
}

struct SweepRow {
  std::size_t shards = 0;
  serve::GlobalStats stats;
  double speedup = 0.0;  // aggregate_fps vs the 1-shard row
};

serve::ShardedEngine make_engine(const Workload& w, std::size_t shards,
                                 std::size_t threads_per_shard, bool pin,
                                 serve::RoutePolicy policy) {
  serve::ShardConfig config;
  config.shards = shards;
  config.policy = policy;
  config.threads_per_shard = threads_per_shard;
  config.pin_cores = pin;
  return serve::ShardedEngine(*w.model, w.masks, w.options, config);
}

/// Capacity mode: ingress as usual, then each shard drains alone so its
/// compute time is uncontended by sibling shards.
serve::GlobalStats run_capacity(const Workload& w, std::size_t shards,
                                std::size_t threads_per_shard, bool pin,
                                serve::RoutePolicy policy) {
  serve::ShardedEngine engine =
      make_engine(w, shards, threads_per_shard, pin, policy);

  std::vector<serve::StreamHandle> handles;
  handles.reserve(w.waves.size());
  for (std::size_t s = 0; s < w.waves.size(); ++s) {
    handles.push_back(engine.open_stream(/*session_key=*/s));
  }
  for (std::size_t s = 0; s < w.waves.size(); ++s) {
    const std::vector<float>& wave = w.waves[s];
    constexpr std::size_t kChunk = 1600;  // 100 ms arrivals
    for (std::size_t pos = 0; pos < wave.size(); pos += kChunk) {
      const std::size_t n = std::min(kChunk, wave.size() - pos);
      while (!engine.submit_audio(
          handles[s], std::span<const float>(wave).subspan(pos, n))) {
        engine.pump_shard(engine.stream_shard(handles[s]));  // backpressure
      }
    }
    while (!engine.finish_stream(handles[s])) {
      engine.pump_shard(engine.stream_shard(handles[s]));
    }
  }

  // One shard at a time: per-shard busy time sees no cross-shard
  // preemption, so frames/busy is true per-replica capacity.
  for (std::size_t shard = 0; shard < shards; ++shard) {
    while (engine.pump_shard(shard) > 0) {
    }
  }
  engine.drain();  // belt and braces: nothing may be left anywhere
  return engine.stats();
}

/// Wall mode: fully concurrent serving through per-shard pump threads.
serve::GlobalStats run_wall(const Workload& w, std::size_t shards,
                            std::size_t threads_per_shard, bool pin,
                            serve::RoutePolicy policy) {
  serve::ShardedEngine engine =
      make_engine(w, shards, threads_per_shard, pin, policy);

  std::vector<serve::StreamHandle> handles;
  handles.reserve(w.waves.size());
  for (std::size_t s = 0; s < w.waves.size(); ++s) {
    handles.push_back(engine.open_stream(/*session_key=*/s));
  }

  engine.start();
  // Interleaved 100 ms arrivals across all streams, with ingress
  // backpressure honored — the pattern of a loaded front door.
  constexpr std::size_t kChunk = 1600;
  std::vector<std::size_t> positions(w.waves.size(), 0);
  bool arriving = true;
  while (arriving) {
    arriving = false;
    for (std::size_t s = 0; s < w.waves.size(); ++s) {
      const std::vector<float>& wave = w.waves[s];
      if (positions[s] >= wave.size()) continue;
      const std::size_t n =
          std::min(kChunk, wave.size() - positions[s]);
      while (!engine.submit_audio(
          handles[s],
          std::span<const float>(wave).subspan(positions[s], n))) {
        std::this_thread::yield();
      }
      positions[s] += n;
      if (positions[s] >= wave.size()) {
        while (!engine.finish_stream(handles[s])) {
          std::this_thread::yield();
        }
      }
      arriving = arriving || positions[s] < wave.size();
    }
  }
  for (const serve::StreamHandle h : handles) {
    while (!engine.stream_done(h)) std::this_thread::yield();
  }
  engine.stop();
  return engine.stats();
}

void print_json(const Workload& w, const std::string& mode,
                std::size_t threads_per_shard, bool pin,
                serve::RoutePolicy policy, double seconds,
                const std::vector<SweepRow>& rows) {
  std::printf("{\n");
  std::printf(
      "  \"bench\": \"bench_sharding\",\n  \"mode\": \"%s\",\n"
      "  \"hidden\": %zu,\n  \"streams\": %zu,\n"
      "  \"audio_seconds_per_stream\": %.3f,\n"
      "  \"threads_per_shard\": %zu,\n  \"pin_cores\": %s,\n"
      "  \"policy\": \"%s\",\n  \"rows\": [\n",
      mode.c_str(), w.model->config().hidden_dim, w.waves.size(), seconds,
      threads_per_shard, pin ? "true" : "false", to_string(policy));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    const runtime::RuntimeStats& merged = row.stats.merged;
    std::printf(
        "    {\"shards\": %zu, \"frames\": %zu, \"steps\": %zu, "
        "\"p50_us\": %.1f, \"p95_us\": %.1f, "
        "\"aggregate_fps\": %.1f, \"wall_fps\": %.1f, "
        "\"rtf\": %.2f, \"wall_rtf\": %.2f, \"speedup\": %.3f}%s\n",
        row.shards, merged.frames_processed, merged.steps,
        merged.step_latency.p50_us(), merged.step_latency.p95_us(),
        row.stats.aggregate_fps, row.stats.wall_fps(),
        merged.real_time_factor(), row.stats.wall_real_time_factor(),
        row.speedup, i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("hidden", "1024", "GRU hidden size (1024 = full-size width)");
  cli.add_flag("streams", "8", "total concurrent streams (fixed across rows)");
  cli.add_flag("seconds", "2", "audio seconds per stream");
  cli.add_flag("max-shards", "4", "largest shard count in the sweep");
  cli.add_flag("threads-per-shard", "1", "pool width per shard");
  cli.add_flag("keep", "0.25", "BSP column keep fraction");
  cli.add_flag("policy", "least-loaded",
               "round-robin | least-loaded | session-hash");
  cli.add_flag("mode", "capacity",
               "capacity (isolated per-shard drains) | wall (concurrent "
               "pump threads)");
  cli.add_switch("pin", "pin each shard to its disjoint core range");
  cli.add_switch("quick", "small model + short audio (CI smoke run)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 cli.help("bench_sharding").c_str());
    return 1;
  }

  const bool quick = cli.get_switch("quick");
  const std::size_t hidden =
      quick ? 96 : static_cast<std::size_t>(cli.get_int("hidden"));
  const std::size_t streams =
      quick ? 4 : static_cast<std::size_t>(cli.get_int("streams"));
  const double seconds = quick ? 0.4 : cli.get_double("seconds");
  const std::size_t max_shards =
      quick ? 2 : static_cast<std::size_t>(cli.get_int("max-shards"));
  const std::size_t threads_per_shard =
      static_cast<std::size_t>(cli.get_int("threads-per-shard"));
  const double keep = cli.get_double("keep");
  const bool pin = cli.get_switch("pin");
  const serve::RoutePolicy policy =
      serve::parse_route_policy(cli.get_string("policy"));
  const std::string mode = cli.get_string("mode");
  if (mode != "capacity" && mode != "wall") {
    std::fprintf(stderr, "unknown --mode %s\n%s", mode.c_str(),
                 cli.help("bench_sharding").c_str());
    return 1;
  }

  std::fprintf(stderr,
               "Sharding sweep: mode=%s hidden=%zu streams=%zu "
               "audio=%.1fs/stream keep=%.2f threads/shard=%zu "
               "policy=%s%s%s\n\n",
               mode.c_str(), hidden, streams, seconds, keep,
               threads_per_shard, to_string(policy), pin ? " pinned" : "",
               quick ? " (quick)" : "");

  const Workload workload =
      build_workload(hidden, keep, streams, seconds);

  // Shard counts: powers of two up to max-shards, ending on max-shards.
  std::vector<std::size_t> shard_counts;
  for (std::size_t s = 1; s < max_shards; s *= 2) shard_counts.push_back(s);
  shard_counts.push_back(max_shards);

  Table table({"shards", "frames", "p50 us", "p95 us", "agg f/s",
               "wall f/s", "RTF", "speedup"});
  std::vector<SweepRow> rows;
  double base_fps = 0.0;
  for (const std::size_t shards : shard_counts) {
    SweepRow row;
    row.shards = shards;
    row.stats =
        mode == "capacity"
            ? run_capacity(workload, shards, threads_per_shard, pin, policy)
            : run_wall(workload, shards, threads_per_shard, pin, policy);
    if (shards == 1) base_fps = row.stats.aggregate_fps;
    row.speedup = base_fps > 0.0 ? row.stats.aggregate_fps / base_fps : 0.0;
    table.add_row({std::to_string(shards),
                   std::to_string(row.stats.merged.frames_processed),
                   format_double(row.stats.merged.step_latency.p50_us(), 1),
                   format_double(row.stats.merged.step_latency.p95_us(), 1),
                   format_double(row.stats.aggregate_fps, 0),
                   format_double(row.stats.wall_fps(), 0),
                   format_double(row.stats.merged.real_time_factor(), 1),
                   format_double(row.speedup, 2)});
    rows.push_back(std::move(row));
  }

  std::fprintf(stderr, "%s\n", table.to_string().c_str());
  std::fprintf(stderr,
               "agg f/s = sum over shards of frames per compute second "
               "(fleet capacity; shards own disjoint cores when pinned).\n"
               "wall f/s = frames over the wall-clock window (wall mode "
               "only; 0 in capacity mode).\n");
  print_json(workload, mode, threads_per_shard, pin, policy, seconds, rows);
  return 0;
}
