// Reproduces Table I: PER versus compression rate for BSP at ten operating
// points, against the five baseline compression schemes (ESE, C-LSTM x2,
// BBS, Wang, E-RNN), all trained on the same synthetic TIMIT-substitute
// corpus with the same scaled GRU.
//
// Substitutions vs the paper (documented in DESIGN.md): TIMIT -> synthetic
// corpus, 9.6M-param GRU -> scaled GRU (2x96, ~150k weights). A 150k-weight
// model cannot survive a literal 301x compression (that would leave ~500
// weights), so each paper operating point is mapped to a capacity-scaled
// compression rate (~1/10th): paper 10x -> ours 2x, ..., paper 301x ->
// ours 32x. The reproduction targets are the *relationships*:
//   (i)   BSP holds baseline PER at moderate compression,
//   (ii)  PER degrades monotonically (within noise) as compression grows,
//   (iii) at matched ~8x compression, fine-grained schemes (BSP, ESE, BBS)
//         lose far less accuracy than coarse ones (Wang, block-circulant).
#include <cstdio>

#include "baselines/bbs.hpp"
#include "baselines/clstm.hpp"
#include "baselines/ernn.hpp"
#include "baselines/ese.hpp"
#include "baselines/wang.hpp"
#include "core/bsp.hpp"
#include "hw/paper_reference.hpp"
#include "hw/timer.hpp"
#include "speech/corpus.hpp"
#include "speech/per.hpp"
#include "train/trainer.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

/// Capacity-scaled sweep: ours[i] plays the role of the paper's point i.
struct OperatingPoint {
  double our_cr;    // compression rate on the scaled model
  double paper_cr;  // the Table I row it corresponds to
};
constexpr OperatingPoint kSweep[] = {
    {1.0, 1.0},  {2.0, 10.0},  {3.0, 19.0},   {4.0, 29.0},  {6.0, 43.0},
    {8.0, 80.0}, {12.0, 103.0}, {16.0, 153.0}, {24.0, 245.0}, {32.0, 301.0},
};

/// Maximum column rate the block geometry supports before whole blocks
/// round to zero; the remainder of the budget comes from row pruning,
/// exactly like BSP step 2.
constexpr double kMaxColRate = 8.0;

struct Experiment {
  speech::Corpus corpus;
  SpeechModel dense_model;
  double dense_per = 0.0;

  Experiment() : corpus(make_corpus()), dense_model(make_model()) {}

  static speech::Corpus make_corpus() {
    speech::CorpusConfig config;
    config.num_train_utterances = 48;
    config.num_test_utterances = 16;
    config.min_phones = 5;
    config.max_phones = 10;
    config.feature_noise = 0.55;
    config.seed = 7;
    return speech::SyntheticTimit(config).generate();
  }

  static SpeechModel make_model() {
    ModelConfig config;
    config.input_dim = 39;
    config.hidden_dim = 96;
    config.num_layers = 2;
    config.num_classes = 39;
    return SpeechModel(config);
  }

  void pretrain() {
    Rng rng(11);
    dense_model.init(rng);
    Trainer trainer(dense_model);
    Adam adam(4e-3);
    TrainConfig config;
    config.epochs = 12;
    config.lr_decay = 0.92;
    trainer.train(config, corpus.train, adam, rng);
    dense_per = speech::corpus_per(dense_model, corpus.test);
  }
};

BspConfig bsp_config_for(double cr) {
  const double col_rate = std::min(cr, kMaxColRate);
  BspConfig config;
  config.num_r = 8;
  config.num_c = 4;
  config.col_keep_fraction = 1.0 / col_rate;
  config.row_keep_fraction = cr > col_rate ? col_rate / cr : 1.0;
  config.rho = 5e-2;
  config.admm_rounds_step1 = 2;
  config.admm_rounds_step2 = config.row_keep_fraction < 1.0 ? 1 : 0;
  config.epochs_per_round = 1;
  config.retrain_epochs = 6;
  config.learning_rate = 2e-3;
  config.retrain_learning_rate = 2e-3;
  config.prune_fc = false;
  return config;
}

}  // namespace
}  // namespace rtmobile

int main() {
  using namespace rtmobile;

  std::printf("== Table I (compression rate vs PER) ==\n");
  std::printf(
      "Scaled reproduction on the synthetic TIMIT substitute (see\n"
      "DESIGN.md). Each row maps a Table I operating point onto a\n"
      "capacity-scaled compression rate; 'paper' columns are the published\n"
      "TIMIT numbers. Compare degradation *shape*, not absolute PER.\n\n");

  WallTimer total_timer;
  Experiment experiment;
  experiment.pretrain();
  std::printf("dense baseline: PER %.2f%% (paper: %.2f%% on TIMIT)\n\n",
              experiment.dense_per, paper::kBaselinePer);

  Table table({"Method", "CR(ours)", "CR(achieved)", "Para.", "PER pruned",
               "Degrad.", "CR(paper)", "Degrad.(paper)"});
  JsonReport report;

  // --- BSP across the capacity-scaled sweep -------------------------------
  for (const auto& point : kSweep) {
    SpeechModel model = experiment.dense_model;  // copy of the pretrained
    double pruned_per = experiment.dense_per;
    double achieved_rate = 1.0;
    double params_m =
        static_cast<double>(model.nonzero_param_count()) / 1e6;
    if (point.our_cr > 1.0) {
      BspPruner pruner(bsp_config_for(point.our_cr));
      Rng rng(23 + static_cast<std::uint64_t>(point.our_cr));
      const BspResult result =
          pruner.prune(model, experiment.corpus.train, rng);
      pruned_per = speech::corpus_per(model, experiment.corpus.test);
      achieved_rate = result.stats.overall_rate();
      params_m = result.stats.params_millions();
    }
    const double degradation = pruned_per - experiment.dense_per;
    const paper::Table1BspRow* paper_row = nullptr;
    for (const auto& row : paper::table1_bsp()) {
      if (row.compression_rate == point.paper_cr) paper_row = &row;
    }
    const double paper_degradation =
        paper_row ? paper_row->per_pruned - paper_row->per_baseline : 0.0;
    table.add_row({"BSP (ours)", format_double(point.our_cr, 0) + "x",
                   format_double(achieved_rate, 1) + "x",
                   format_si(params_m * 1e6, 2),
                   format_double(pruned_per, 2),
                   format_double(degradation, 2),
                   format_double(point.paper_cr, 0) + "x",
                   format_double(paper_degradation, 2)});
    JsonRecord record;
    record.set("experiment", "table1");
    record.set("method", "BSP");
    record.set("compression_rate_ours", point.our_cr);
    record.set("compression_rate_achieved", achieved_rate);
    record.set("compression_rate_paper", point.paper_cr);
    record.set("per_baseline", experiment.dense_per);
    record.set("per_pruned", pruned_per);
    record.set("per_degradation", degradation);
    record.set("per_degradation_paper", paper_degradation);
    report.add(record);
  }
  table.add_separator();

  // --- Baselines at their published operating points ---------------------
  const auto run_baseline = [&](const char* label, double target_rate,
                                double paper_rate, double paper_degradation,
                                auto&& compress) {
    SpeechModel model = experiment.dense_model;
    Rng rng(1234);
    const baselines::BaselineOutcome outcome = compress(model, rng);
    const double pruned_per =
        speech::corpus_per(model, experiment.corpus.test);
    const double degradation = pruned_per - experiment.dense_per;
    table.add_row({label, format_double(target_rate, 0) + "x",
                   format_double(outcome.compression_rate(), 1) + "x",
                   format_si(outcome.params_millions() * 1e6, 2),
                   format_double(pruned_per, 2),
                   format_double(degradation, 2),
                   format_double(paper_rate, 0) + "x",
                   format_double(paper_degradation, 2)});
    JsonRecord record;
    record.set("experiment", "table1");
    record.set("method", label);
    record.set("compression_rate_ours", target_rate);
    record.set("compression_rate_achieved", outcome.compression_rate());
    record.set("per_pruned", pruned_per);
    record.set("per_degradation", degradation);
    record.set("per_degradation_paper", paper_degradation);
    report.add(record);
  };

  run_baseline("ESE", 8.0, 8.0, 0.30, [&](SpeechModel& m, Rng& rng) {
    baselines::EseConfig config;
    config.keep_fraction = 0.125;
    config.rho = 5e-2;
    config.admm_rounds = 2;
    config.retrain_epochs = 6;
    config.retrain_learning_rate = 2e-3;
    return baselines::EsePruner(config).compress(
        m, experiment.corpus.train, rng);
  });
  run_baseline("C-LSTM", 8.0, 8.0, 0.42, [&](SpeechModel& m, Rng& rng) {
    baselines::ClstmConfig config;
    config.block_size = 8;
    config.projected_epochs = 16;
    config.final_epochs = 4;
    config.learning_rate = 3e-3;
    return baselines::ClstmCompressor(config).compress(
        m, experiment.corpus.train, rng);
  });
  run_baseline("C-LSTM", 16.0, 16.0, 1.33, [&](SpeechModel& m, Rng& rng) {
    baselines::ClstmConfig config;
    config.block_size = 16;
    config.projected_epochs = 16;
    config.final_epochs = 4;
    config.learning_rate = 3e-3;
    return baselines::ClstmCompressor(config).compress(
        m, experiment.corpus.train, rng);
  });
  run_baseline("BBS", 8.0, 8.0, 0.25, [&](SpeechModel& m, Rng& rng) {
    baselines::BbsConfig config;
    config.bank_size = 16;
    config.keep_per_bank = 2;
    config.rho = 5e-2;
    config.admm_rounds = 2;
    config.retrain_epochs = 6;
    config.retrain_learning_rate = 2e-3;
    return baselines::BbsPruner(config).compress(
        m, experiment.corpus.train, rng);
  });
  run_baseline("Wang", 4.0, 4.0, 0.91, [&](SpeechModel& m, Rng& rng) {
    baselines::WangConfig config;
    config.col_keep_fraction = 0.5;
    config.row_keep_fraction = 0.5;
    config.retrain_epochs = 6;
    config.retrain_learning_rate = 2e-3;
    return baselines::WangPruner(config).compress(
        m, experiment.corpus.train, rng);
  });
  run_baseline("E-RNN", 8.0, 8.0, 0.18, [&](SpeechModel& m, Rng& rng) {
    baselines::ErnnConfig config;
    config.block_size = 8;
    config.rho = 5e-2;
    config.admm_rounds = 2;
    config.finetune_epochs = 6;
    config.finetune_learning_rate = 2e-3;
    return baselines::ErnnCompressor(config).compress(
        m, experiment.corpus.train, rng);
  });

  std::printf("%s\n", table.to_string().c_str());
  std::printf("total harness time: %.1f s\n",
              total_timer.elapsed_us() / 1e6);
  report.write_file("table1.json");
  return 0;
}
