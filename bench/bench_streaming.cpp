// Streaming runtime benchmark: aggregate throughput and step latency of
// the batched serving path as concurrent streams scale 1 -> 8, measured
// through the unified Recognizer surface (LocalRecognizer).
//
// Each configuration serves N independent audio streams through one
// BSP-pruned compiled model. All audio is pushed up front and the
// recognizer drained, so every step batches the maximum number of ready
// streams — the steady-state regime of a loaded server. Each stream
// count runs twice: logits-only (decode off) and with the in-loop
// greedy StreamingDecoder, so the "dec ovh%" column prices streaming
// decode (partial-hypothesis emission) against raw inference. Reported
// per row: frames processed, mean batch size, p50/p95 step latency,
// aggregate frames/sec, the real-time factor (audio seconds per compute
// second, summed over streams), throughput speedup versus the
// single-stream row, decoded frames/sec, and the decode overhead. The
// whole sweep is also emitted as streaming.json (a CI artifact), so the
// cost of in-loop decoding is tracked across runs.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "hw/thread_pool.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "runtime/inference_engine.hpp"
#include "serve/local_recognizer.hpp"
#include "sparse/block_mask.hpp"
#include "speech/streaming_mfcc.hpp"
#include "train/projection.hpp"
#include "util/cli.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

struct BenchSetup {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<SpeechModel> model;
  std::unique_ptr<CompiledSpeechModel> compiled;
};

BenchSetup build_model(std::size_t hidden, std::size_t threads,
                       double keep_fraction,
                       WeightPrecision precision = WeightPrecision::kFp32) {
  BenchSetup setup;
  Rng rng(1234);
  ModelConfig config = ModelConfig::scaled(hidden);
  setup.model = std::make_unique<SpeechModel>(config);
  setup.model->init(rng);

  std::map<std::string, BlockMask> masks;
  ParamSet params;
  setup.model->register_params(params);
  for (const std::string& name : setup.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 8, 4, keep_fraction);
    mask.apply(w);
    masks.emplace(name, std::move(mask));
  }

  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.threads = threads;
  options.precision = precision;
  if (threads > 1) setup.pool = std::make_unique<ThreadPool>(threads);
  setup.compiled = std::make_unique<CompiledSpeechModel>(
      *setup.model, masks, options, setup.pool.get());
  return setup;
}

std::vector<float> make_waveform(double seconds, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(static_cast<std::size_t>(seconds * 16000.0));
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

/// Serves `streams` identical-length waveforms through a LocalRecognizer
/// (decode mode per `mode`) and returns the engine's stats.
runtime::RuntimeStats run_serving(const BenchSetup& setup,
                                  std::size_t streams, double seconds,
                                  speech::DecodeMode mode) {
  serve::LocalRecognizer recognizer(*setup.compiled);
  serve::StreamConfig config;
  config.decode.mode = mode;
  std::vector<serve::StreamHandle> handles;
  for (std::size_t s = 0; s < streams; ++s) {
    handles.push_back(recognizer.open_stream(config));
    const std::vector<float> wave = make_waveform(seconds, 9000 + s);
    (void)recognizer.submit_audio(handles[s], wave);
    (void)recognizer.finish_stream(handles[s]);
  }
  recognizer.drain();
  return recognizer.engine().stats();
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("hidden", "256", "GRU hidden size of the served model");
  cli.add_flag("threads", std::to_string(ThreadPool::default_thread_count()),
               "thread pool size");
  cli.add_flag("seconds", "4", "audio seconds per stream");
  cli.add_flag("max-streams", "8", "largest concurrent-stream count");
  cli.add_flag("keep", "0.25", "BSP column keep fraction");
  cli.add_flag("precision", "fp32",
               "weight storage for the scaling table: fp32|fp16|int8|"
               "int8/row (the sweep section always covers all four)");
  cli.add_switch("quick",
                 "small model + short audio (CI smoke run; overrides "
                 "--hidden and --seconds)");
  WeightPrecision precision = WeightPrecision::kFp32;
  try {
    cli.parse(argc, argv);
    precision = weight_precision_from_string(
        cli.get_string("precision").c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 cli.help("bench_streaming").c_str());
    return 1;
  }

  const bool quick = cli.get_switch("quick");
  const std::size_t hidden =
      quick ? 96 : static_cast<std::size_t>(cli.get_int("hidden"));
  const double seconds = quick ? 0.5 : cli.get_double("seconds");
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads"));
  const std::size_t max_streams =
      static_cast<std::size_t>(cli.get_int("max-streams"));
  const double keep = cli.get_double("keep");

  std::printf(
      "Streaming engine scaling: hidden=%zu threads=%zu audio=%.1fs/stream "
      "keep=%.2f precision=%s%s\n\n",
      hidden, threads, seconds, keep, to_string(precision),
      quick ? " (quick)" : "");

  BenchSetup setup = build_model(hidden, threads, keep, precision);

  speech::MfccConfig mfcc;
  mfcc.cepstral_mean_norm = false;

  JsonReport report;
  Table table({"streams", "frames", "mean batch", "p50 us", "p95 us",
               "frames/s", "RTF", "speedup", "dec fps", "dec ovh%"});
  // Powers of two up to max-streams, always ending on max-streams itself
  // so a non-power-of-two request still benchmarks the count asked for.
  std::vector<std::size_t> stream_counts;
  for (std::size_t s = 1; s < max_streams; s *= 2) stream_counts.push_back(s);
  stream_counts.push_back(max_streams);
  double base_fps = 0.0;
  for (const std::size_t streams : stream_counts) {
    const runtime::RuntimeStats stats =
        run_serving(setup, streams, seconds, speech::DecodeMode::kNone);
    const runtime::RuntimeStats decoded =
        run_serving(setup, streams, seconds, speech::DecodeMode::kGreedy);

    const double fps = stats.frames_per_second();
    const double decode_fps = decoded.frames_per_second();
    const double overhead_pct =
        decode_fps > 0.0 ? (fps / decode_fps - 1.0) * 100.0 : 0.0;
    if (streams == 1) base_fps = fps;
    table.add_row({std::to_string(streams),
                   std::to_string(stats.frames_processed),
                   format_double(stats.mean_batch(), 1),
                   format_double(stats.step_latency.p50_us(), 1),
                   format_double(stats.step_latency.p95_us(), 1),
                   format_double(fps, 0),
                   format_double(stats.real_time_factor(), 1),
                   format_double(base_fps > 0.0 ? fps / base_fps : 0.0, 2),
                   format_double(decode_fps, 0),
                   format_double(overhead_pct, 1)});

    JsonRecord record;
    record.set("section", "scaling");
    record.set("streams", static_cast<std::int64_t>(streams));
    record.set("hidden", static_cast<std::int64_t>(hidden));
    record.set("threads", static_cast<std::int64_t>(threads));
    record.set("precision", to_string(precision));
    record.set("frames", static_cast<std::int64_t>(stats.frames_processed));
    record.set("mean_batch", stats.mean_batch());
    record.set("p50_us", stats.step_latency.p50_us());
    record.set("p95_us", stats.step_latency.p95_us());
    record.set("frames_per_sec", fps);
    record.set("rtf", stats.real_time_factor());
    record.set("decode_frames_per_sec", decode_fps);
    record.set("decode_overhead_pct", overhead_pct);
    report.add(std::move(record));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "RTF = audio seconds processed per compute second, summed over "
      "streams (>1 is faster than real time). dec fps re-runs the sweep "
      "with the in-loop greedy StreamingDecoder (partial-hypothesis "
      "events); dec ovh%% is its throughput cost.\n\n");

  // Precision sweep at the largest stream count: the same end-to-end
  // serving pipeline (streaming MFCC + batched engine) with the model
  // compiled at each packed storage width. This also exercises the
  // packed kernels in CI's sanitizer smoke run.
  std::printf("Weight-precision sweep at %zu streams:\n\n", max_streams);
  Table precision_table(
      {"precision", "weight MB", "frames/s", "RTF", "speedup"});
  double fp32_fps = 0.0;
  for (const WeightPrecision precision :
       {WeightPrecision::kFp32, WeightPrecision::kFp16,
        WeightPrecision::kInt8PerTensor, WeightPrecision::kInt8PerRow}) {
    BenchSetup swept = build_model(hidden, threads, keep, precision);
    runtime::InferenceEngine engine(*swept.compiled);
    for (std::size_t s = 0; s < max_streams; ++s) {
      runtime::StreamingSession& session = engine.create_session(mfcc);
      const std::vector<float> wave = make_waveform(seconds, 9000 + s);
      session.push_audio(wave);
      session.finish();
    }
    engine.drain();
    const runtime::RuntimeStats& stats = engine.stats();
    const double fps = stats.frames_per_second();
    if (precision == WeightPrecision::kFp32) fp32_fps = fps;
    precision_table.add_row(
        {to_string(precision),
         format_double(static_cast<double>(
                           swept.compiled->total_memory_bytes()) /
                           (1024.0 * 1024.0),
                       2),
         format_double(fps, 0), format_double(stats.real_time_factor(), 1),
         format_double(fp32_fps > 0.0 ? fps / fp32_fps : 0.0, 2)});

    JsonRecord record;
    record.set("section", "precision");
    record.set("precision", to_string(precision));
    record.set("streams", static_cast<std::int64_t>(max_streams));
    record.set("weight_bytes", static_cast<std::int64_t>(
                                   swept.compiled->total_memory_bytes()));
    record.set("frames_per_sec", fps);
    record.set("rtf", stats.real_time_factor());
    report.add(std::move(record));
  }
  std::printf("%s\n", precision_table.to_string().c_str());

  report.write_file("streaming.json");
  std::printf("wrote streaming.json (%zu records)\n", report.size());
  return 0;
}
