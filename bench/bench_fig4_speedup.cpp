// Reproduces Figure 4: inference speedup over the dense baseline as a
// function of compression rate, for the mobile GPU and CPU.
//
// Section 1 evaluates the calibrated device models on the paper's
// workloads (speedup = dense modeled time / pruned modeled time; the
// paper's own speedups derived from Table II are printed alongside).
// Section 2 measures the real BSPC kernel against the real dense kernel on
// this host over a denser sweep of compression rates, reproducing the
// figure's saturating shape with measured code.
#include <cstdio>
#include <vector>

#include "compiler/execution_plan.hpp"
#include "hw/device_model.hpp"
#include "hw/paper_reference.hpp"
#include "hw/thread_pool.hpp"
#include "hw/timer.hpp"
#include "tensor/ops.hpp"
#include "train/projection.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

void print_model_section() {
  const DeviceModel gpu = DeviceModel::adreno640_gpu();
  const DeviceModel cpu = DeviceModel::kryo485_cpu();
  const auto rows = paper::table2();
  const double gpu_dense = gpu.time_us({rows[0].gop, 1.0});
  const double cpu_dense = cpu.time_us({rows[0].gop, 1.0});

  std::printf("== Figure 4 (device-model reproduction) ==\n");
  std::printf("Speedup over the dense baseline on the same device.\n\n");
  Table table({"CR", "GPU speedup", "GPU speedup(paper)", "CPU speedup",
               "CPU speedup(paper)"});
  JsonReport report;
  for (const auto& row : rows) {
    const Workload workload{row.gop, row.compression_rate};
    const double gpu_speedup = gpu_dense / gpu.time_us(workload);
    const double cpu_speedup = cpu_dense / cpu.time_us(workload);
    const double paper_gpu = rows[0].gpu_time_us / row.gpu_time_us;
    const double paper_cpu = rows[0].cpu_time_us / row.cpu_time_us;
    table.add_row({format_double(row.compression_rate, 0) + "x",
                   format_double(gpu_speedup, 2) + "x",
                   format_double(paper_gpu, 2) + "x",
                   format_double(cpu_speedup, 2) + "x",
                   format_double(paper_cpu, 2) + "x"});
    JsonRecord record;
    record.set("experiment", "fig4_model");
    record.set("compression_rate", row.compression_rate);
    record.set("gpu_speedup", gpu_speedup);
    record.set("gpu_speedup_paper", paper_gpu);
    record.set("cpu_speedup", cpu_speedup);
    record.set("cpu_speedup_paper", paper_cpu);
    report.add(record);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape check: speedup grows with compression and flattens beyond\n"
      "~250x (paper: 'the speedup becomes stable when compression rate\n"
      "reaches a certain range').\n\n");
  report.write_file("fig4_model.json");
}

void print_measured_section() {
  std::printf("== Figure 4 (host-measured kernels) ==\n");
  // A single recurrent-scale matrix (1024 x 2048, the concatenated gate
  // width of the full model's layer 2) swept over compression rates.
  constexpr std::size_t kRows = 1024;
  constexpr std::size_t kCols = 2048;
  Rng rng(99);
  Matrix weights(kRows, kCols);
  fill_normal(weights.span(), rng, 1.0F);
  Vector x(kCols);
  fill_normal(x.span(), rng, 1.0F);
  Vector y(kRows);

  const std::size_t threads = ThreadPool::default_thread_count();
  ThreadPool pool(threads);

  CompilerOptions dense_options;
  dense_options.format = SparseFormat::kDense;
  dense_options.threads = threads;
  const LayerPlan dense_plan =
      LayerPlan::compile(weights, nullptr, dense_options);
  const double dense_us = time_best_of_us(
      [&] { dense_plan.execute(x.span(), y.span(), &pool); }, 10, 3);

  std::printf("dense GEMV baseline (%zux%zu, %zu threads): %.1f us\n\n",
              kRows, kCols, threads, dense_us);
  Table table({"CR", "nnz", "kernel us", "speedup", "thread imbalance"});
  JsonReport report;
  const std::vector<double> rates = {1,  2,   5,   10,  19,  29, 43,
                                     80, 103, 153, 245, 301, 400};
  for (const double cr : rates) {
    double time_us = dense_us;
    double imbalance = 1.0;
    std::size_t nnz = kRows * kCols;
    if (cr > 1.0) {
      // Decompose like BSP's two steps (and Table I's operating points):
      // up to 16x from in-block columns, the rest from whole rows.
      const double col_rate = std::min(cr, 16.0);
      const double row_keep = col_rate / cr;
      BlockMask mask = block_column_mask(weights, 64, 16, 1.0 / col_rate);
      if (row_keep < 1.0) apply_row_pruning(weights, row_keep, mask);
      CompilerOptions options;
      options.format = SparseFormat::kBspc;
      options.threads = threads;
      const LayerPlan plan = LayerPlan::compile(weights, &mask, options);
      nnz = plan.nnz();
      time_us = time_best_of_us(
          [&] { plan.execute(x.span(), y.span(), &pool); }, 20, 3);
      imbalance = plan.imbalance();
    }
    table.add_row({format_double(cr, 0) + "x",
                   format_si(static_cast<double>(nnz), 1),
                   format_double(time_us, 1),
                   format_double(dense_us / time_us, 2) + "x",
                   format_double(imbalance, 3)});
    JsonRecord record;
    record.set("experiment", "fig4_host");
    record.set("compression_rate", cr);
    record.set("nnz", static_cast<std::int64_t>(nnz));
    record.set("time_us", time_us);
    record.set("speedup", dense_us / time_us);
    report.add(record);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Note: host speedups saturate earlier than the paper's mobile GPU\n"
      "because per-dispatch overhead is a larger share of these smaller\n"
      "kernels; the saturating shape itself is the reproduction target.\n");
  report.write_file("fig4_host.json");
}

}  // namespace
}  // namespace rtmobile

int main() {
  rtmobile::print_model_section();
  rtmobile::print_measured_section();
  return 0;
}
