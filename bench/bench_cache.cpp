// Prefix result cache benchmark: repeat-heavy traffic (seeded Zipfian
// utterance repetition, the wake-word/IVR shape) replayed through one
// engine with the cache off and on, sweeping repeat skew x cache byte
// budget.
//
// Traffic comes from speech::UtteranceRepeatGenerator: a fixed pool of
// synthesized utterances dealt with Zipf(s) repetition — s=0 is uniform
// (worst case for the cache), s around 1.1 is the classic repeat-heavy
// fleet shape. Each draw is one full stream served end to end; streams
// run back to back on a persistent engine, so the cache warms exactly
// the way a long-lived serving shard's would. Reported per cell: hit
// rate, frames skipped, resident bytes, evictions, wall frames/s, and
// the speedup against the cache-off replay of the identical traffic.
// The sweep is emitted as cache.json (a CI artifact).
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "hw/thread_pool.hpp"
#include "hw/timer.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "runtime/inference_engine.hpp"
#include "sparse/block_mask.hpp"
#include "speech/streaming_mfcc.hpp"
#include "speech/synth.hpp"
#include "train/projection.hpp"
#include "util/cli.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

struct BenchSetup {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<SpeechModel> model;
  std::unique_ptr<CompiledSpeechModel> compiled;
};

BenchSetup build_model(std::size_t hidden, std::size_t threads,
                       double keep_fraction) {
  BenchSetup setup;
  Rng rng(1234);
  ModelConfig config = ModelConfig::scaled(hidden);
  setup.model = std::make_unique<SpeechModel>(config);
  setup.model->init(rng);

  std::map<std::string, BlockMask> masks;
  ParamSet params;
  setup.model->register_params(params);
  for (const std::string& name : setup.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 8, 4, keep_fraction);
    mask.apply(w);
    masks.emplace(name, std::move(mask));
  }

  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.threads = threads;
  if (threads > 1) setup.pool = std::make_unique<ThreadPool>(threads);
  setup.compiled = std::make_unique<CompiledSpeechModel>(
      *setup.model, masks, options, setup.pool.get());
  return setup;
}

struct RunResult {
  runtime::RuntimeStats stats;
  double wall_us = 0.0;
  std::size_t cache_entries = 0;
};

/// Replays `draws` Zipf-dealt streams back to back on one engine (cache
/// per `engine_config`), one full utterance per stream. The generator is
/// rebuilt per run from the same traffic config, so the off/on replays
/// see the identical draw sequence.
RunResult run_traffic(const BenchSetup& setup,
                      const speech::RepeatTrafficConfig& traffic,
                      std::size_t draws,
                      const runtime::EngineConfig& engine_config) {
  speech::UtteranceRepeatGenerator generator(traffic);
  runtime::InferenceEngine engine(*setup.compiled, engine_config);
  WallTimer timer;
  for (std::size_t i = 0; i < draws; ++i) {
    runtime::StreamingSession& session = engine.create_session();
    session.push_audio(generator.next_wave());
    session.finish();
    engine.drain();
    engine.remove_done();
  }
  RunResult result;
  result.wall_us = timer.elapsed_us();
  result.stats = engine.stats();
  if (engine.cache() != nullptr) {
    result.cache_entries = engine.cache()->entries();
  }
  return result;
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("hidden", "256", "GRU hidden size of the served model");
  cli.add_flag("threads", "1",
               "thread pool size (1 isolates the cache effect)");
  cli.add_flag("keep", "0.25", "BSP column keep fraction");
  cli.add_flag("pool", "12", "distinct utterances in the traffic pool");
  cli.add_flag("draws", "48", "streams served per cell (Zipf draws)");
  cli.add_flag("phones", "6", "phones per synthesized utterance");
  cli.add_flag("seed", "7", "traffic seed (pool and draw order)");
  cli.add_switch("quick", "small model + short traffic (CI smoke run)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 cli.help("bench_cache").c_str());
    return 1;
  }

  const bool quick = cli.get_switch("quick");
  const std::size_t hidden =
      quick ? 96 : static_cast<std::size_t>(cli.get_int("hidden"));
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads"));
  const double keep = cli.get_double("keep");
  const std::size_t pool_size =
      quick ? 6 : static_cast<std::size_t>(cli.get_int("pool"));
  const std::size_t draws =
      quick ? 18 : static_cast<std::size_t>(cli.get_int("draws"));

  speech::RepeatTrafficConfig traffic;
  traffic.distinct_utterances = pool_size;
  traffic.phones_per_utterance =
      quick ? 4 : static_cast<std::size_t>(cli.get_int("phones"));
  traffic.samples_per_phone = quick ? 800 : 1200;
  traffic.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf(
      "Prefix cache on Zipf repeat traffic: hidden=%zu threads=%zu "
      "keep=%.2f pool=%zu draws=%zu%s\n\n",
      hidden, threads, keep, pool_size, draws, quick ? " (quick)" : "");

  const BenchSetup setup = build_model(hidden, threads, keep);

  const std::vector<double> skews = {0.0, 0.7, 1.1};
  // Budgets: effectively unbounded, and one sized to hold only part of
  // the pool so eviction pressure shows up in the table.
  const std::vector<std::size_t> budgets = {64U << 20, 256U << 10};

  JsonReport report;
  Table table({"skew", "budget", "frames", "hit rate", "skipped",
               "evict", "resident KB", "frames/s", "speedup"});
  for (const double skew : skews) {
    traffic.skew = skew;
    runtime::EngineConfig off;
    const RunResult baseline = run_traffic(setup, traffic, draws, off);
    const double base_fps =
        baseline.wall_us > 0.0
            ? static_cast<double>(baseline.stats.frames_processed) /
                  (baseline.wall_us * 1e-6)
            : 0.0;
    table.add_row({format_double(skew, 1), "off",
                   std::to_string(baseline.stats.frames_processed), "-",
                   "0", "0", "0", format_double(base_fps, 0), "1.00"});

    for (const std::size_t budget : budgets) {
      runtime::EngineConfig on;
      on.cache.enabled = true;
      on.cache.byte_budget = budget;
      const RunResult cached = run_traffic(setup, traffic, draws, on);
      const double fps =
          cached.wall_us > 0.0
              ? static_cast<double>(cached.stats.frames_processed) /
                    (cached.wall_us * 1e-6)
              : 0.0;
      const double speedup = base_fps > 0.0 ? fps / base_fps : 0.0;
      const runtime::RuntimeStats& stats = cached.stats;
      table.add_row(
          {format_double(skew, 1),
           std::to_string(budget >> 10) + " KB",
           std::to_string(stats.frames_processed),
           format_double(stats.cache_hit_rate() * 100.0, 1) + "%",
           std::to_string(stats.cache_skipped_steps),
           std::to_string(stats.cache_evictions),
           format_double(static_cast<double>(stats.cache_bytes) / 1024.0,
                         0),
           format_double(fps, 0), format_double(speedup, 2)});

      JsonRecord record;
      record.set("section", "zipf_sweep");
      record.set("skew", skew);
      record.set("budget_bytes", static_cast<std::int64_t>(budget));
      record.set("hidden", static_cast<std::int64_t>(hidden));
      record.set("pool", static_cast<std::int64_t>(pool_size));
      record.set("draws", static_cast<std::int64_t>(draws));
      record.set("frames",
                 static_cast<std::int64_t>(stats.frames_processed));
      record.set("hit_rate", stats.cache_hit_rate());
      record.set("skipped_steps",
                 static_cast<std::int64_t>(stats.cache_skipped_steps));
      record.set("evictions",
                 static_cast<std::int64_t>(stats.cache_evictions));
      record.set("resident_bytes",
                 static_cast<std::int64_t>(stats.cache_bytes));
      record.set("entries",
                 static_cast<std::int64_t>(cached.cache_entries));
      record.set("frames_per_sec", fps);
      record.set("baseline_frames_per_sec", base_fps);
      record.set("speedup", speedup);
      report.add(std::move(record));
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "hit rate = frames served from cache / frames served; skipped = "
      "model steps avoided; speedup = wall frames/s vs the cache-off "
      "replay of the identical draw sequence. The cache never changes "
      "results (tests/test_cache.cpp proves bitwise parity); it only "
      "converts repeated prefixes into memory traffic.\n");

  report.write_file("cache.json");
  std::printf("wrote cache.json (%zu records)\n", report.size());
  return 0;
}
