// Precision ablation and packed-kernel throughput.
//
// Section 1 (accuracy, paper Sec. V: "Our GPU implementation uses 16-bit
// floating point"): storage precision x pruning, measuring PER and weight
// storage on the scaled model. Reproduces the implicit claim that fp16
// weight storage is accuracy-free for this model family, and extends it
// with the int8 column the paper leaves as future work.
//
// Section 2 (throughput): the packed compute path. The same BSP-pruned
// model is compiled at fp32 / fp16 / int8 storage
// (CompilerOptions::precision) and the steady-state recurrence is timed
// single-stream and batched. Weights are what the batched serving path
// streams per stream per timestep, so the 2-4x payload shrink shows up
// as frames/sec once the working set outgrows cache — the "beyond
// real-time" composition of pruning and quantization the paper's title
// claims.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "core/bsp.hpp"
#include "core/quantize.hpp"
#include "hw/thread_pool.hpp"
#include "hw/timer.hpp"
#include "rnn/param_set.hpp"
#include "sparse/bspc.hpp"
#include "sparse/bspc_quant.hpp"
#include "tensor/ops.hpp"
#include "speech/corpus.hpp"
#include "speech/per.hpp"
#include "train/projection.hpp"
#include "train/trainer.hpp"
#include "util/cli.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

constexpr WeightPrecision kPrecisions[] = {
    WeightPrecision::kFp32, WeightPrecision::kFp16,
    WeightPrecision::kInt8PerTensor, WeightPrecision::kInt8PerRow};

void run_accuracy_section(bool quick, JsonReport& report) {
  std::printf("== Precision x pruning: PER and storage (scaled model) ==\n\n");

  speech::CorpusConfig corpus_config;
  corpus_config.num_train_utterances = quick ? 12 : 32;
  corpus_config.num_test_utterances = quick ? 6 : 12;
  corpus_config.feature_noise = 0.55;
  corpus_config.seed = 3;
  const speech::Corpus corpus =
      speech::SyntheticTimit(corpus_config).generate();

  ModelConfig model_config;
  model_config.input_dim = 39;
  model_config.hidden_dim = 64;
  model_config.num_layers = 2;
  model_config.num_classes = 39;
  SpeechModel dense(model_config);
  Rng rng(17);
  dense.init(rng);
  {
    Trainer trainer(dense);
    Adam adam(4e-3);
    TrainConfig config;
    config.epochs = quick ? 4 : 10;
    config.lr_decay = 0.92;
    trainer.train(config, corpus.train, adam, rng);
  }

  // A BSP-pruned variant to show precision composes with pruning.
  SpeechModel pruned = dense;
  {
    BspConfig config;
    config.num_r = 8;
    config.num_c = 4;
    config.col_keep_fraction = 0.25;
    config.rho = 5e-2;
    config.admm_rounds_step1 = 2;
    config.retrain_epochs = quick ? 2 : 4;
    config.retrain_learning_rate = 2e-3;
    config.prune_fc = false;
    Rng prune_rng(19);
    BspPruner(config).prune(pruned, corpus.train, prune_rng);
  }

  Table table({"model", "precision", "PER", "max |err|", "weight KB"});
  const auto evaluate = [&](const char* label, const SpeechModel& base,
                            WeightPrecision precision) {
    SpeechModel model = base;
    const QuantizationReport q = quantize_model(model, precision);
    const double per = speech::corpus_per(model, corpus.test);
    table.add_row({label, to_string(precision), format_double(per, 2),
                   format_double(q.max_abs_error, 6),
                   format_double(
                       static_cast<double>(q.stored_bytes) / 1024.0, 1)});
    JsonRecord record;
    record.set("experiment", "quantization");
    record.set("model", label);
    record.set("precision", to_string(precision));
    record.set("per", per);
    record.set("max_abs_error", q.max_abs_error);
    record.set("stored_bytes", static_cast<std::int64_t>(q.stored_bytes));
    report.add(record);
  };

  for (const WeightPrecision precision : kPrecisions) {
    evaluate("dense", dense, precision);
  }
  table.add_separator();
  for (const WeightPrecision precision : kPrecisions) {
    evaluate("BSP 4x", pruned, precision);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation (paper's deployment choice): fp16 is PER-neutral at\n"
      "half the storage; int8 costs little with per-row scales.\n\n");
}

/// BSP-prunes every weight of a fresh model of the given width and
/// returns it with its masks (the full-size performance-model recipe
/// bench_streaming uses).
struct ThroughputModel {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
};

ThroughputModel build_throughput_model(std::size_t hidden,
                                       double keep_fraction) {
  ThroughputModel out;
  Rng rng(1234);
  out.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  out.model->init(rng);
  ParamSet params;
  out.model->register_params(params);
  for (const std::string& name : out.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 8, 4, keep_fraction);
    mask.apply(w);
    out.masks.emplace(name, std::move(mask));
  }
  return out;
}

void run_throughput_section(std::size_t hidden, std::size_t threads,
                            std::size_t frames, std::size_t batch,
                            double keep, JsonReport& report) {
  std::printf(
      "== Packed-kernel throughput: hidden=%zu threads=%zu frames=%zu "
      "batch=%zu keep=%.2f ==\n\n",
      hidden, threads, frames, batch, keep);

  const ThroughputModel tm = build_throughput_model(hidden, keep);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  Table table({"precision", "weight MB", "1-stream fps", "batched fps",
               "batched speedup"});
  double base_batched_fps = 0.0;
  for (const WeightPrecision precision : kPrecisions) {
    CompilerOptions options;
    options.format = SparseFormat::kBspc;
    options.threads = threads;
    options.precision = precision;
    const CompiledSpeechModel compiled(*tm.model, tm.masks, options,
                                       pool.get());

    const auto time_fps = [&](std::size_t run_batch) {
      // Warm-up pass touches every weight once, then best-of-2 timing.
      compiled.run_recurrence(2, run_batch);
      double best_us = 0.0;
      for (int rep = 0; rep < 2; ++rep) {
        WallTimer timer;
        compiled.run_recurrence(frames, run_batch);
        const double us = timer.elapsed_us();
        if (rep == 0 || us < best_us) best_us = us;
      }
      return static_cast<double>(frames * run_batch) / (best_us * 1e-6);
    };

    const double single_fps = time_fps(1);
    const double batched_fps = time_fps(batch);
    if (precision == WeightPrecision::kFp32) base_batched_fps = batched_fps;
    const double weight_mb =
        static_cast<double>(compiled.total_memory_bytes()) / (1024.0 * 1024.0);
    table.add_row(
        {to_string(precision), format_double(weight_mb, 2),
         format_double(single_fps, 0), format_double(batched_fps, 0),
         format_double(
             base_batched_fps > 0.0 ? batched_fps / base_batched_fps : 0.0,
             2)});

    JsonRecord record;
    record.set("experiment", "quantization_throughput");
    record.set("precision", to_string(precision));
    record.set("hidden", static_cast<std::int64_t>(hidden));
    record.set("threads", static_cast<std::int64_t>(threads));
    record.set("batch", static_cast<std::int64_t>(batch));
    record.set("weight_bytes",
               static_cast<std::int64_t>(compiled.total_memory_bytes()));
    record.set("single_stream_fps", single_fps);
    record.set("batched_fps", batched_fps);
    report.add(record);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Batched rows stream weights once per stream per timestep, so the\n"
      "int8 payload's 4x bandwidth shrink is the win to look for.\n\n");
}

/// Kernel-level matvec vs matmat on one recurrent-scale matrix: how
/// much a future multi-stream step path would gain by streaming each
/// weight block once for the whole batch (PackedQuantizedBspc::spmm)
/// instead of once per stream (spmv). step_batch still runs per-stream
/// matvecs, so this is the headroom number, not the serving number.
void run_matmat_section(std::size_t hidden, std::size_t frames,
                        std::size_t batch, double keep,
                        JsonReport& report) {
  std::printf("== Kernel headroom: spmv x batch vs spmm (U-matrix %zux%zu) "
              "==\n\n",
              hidden, hidden);
  Rng rng(77);
  Matrix w(hidden, hidden);
  fill_normal(w.span(), rng, 1.0F);
  BlockMask mask = block_column_mask(w, 8, 4, keep);
  mask.apply(w);
  const BspcMatrix bspc = BspcMatrix::from_dense(w, mask);

  Matrix x(batch, hidden);
  fill_normal(x.span(), rng, 1.0F);
  Matrix y(batch, hidden);
  const std::size_t iters = std::max<std::size_t>(frames, 8);

  Table table({"precision", "spmv x batch us", "spmm us", "matmat gain"});
  for (const WeightPrecision precision :
       {WeightPrecision::kFp16, WeightPrecision::kInt8PerTensor,
        WeightPrecision::kInt8PerRow}) {
    const PackedQuantizedBspc packed =
        PackedQuantizedBspc::pack(bspc, precision);
    const double spmv_us = time_best_of_us(
        [&] {
          for (std::size_t b = 0; b < batch; ++b) {
            packed.spmv(x.row(b), y.row(b));
          }
        },
        iters, 2);
    const double spmm_us =
        time_best_of_us([&] { packed.spmm(x, y, batch); }, iters, 2);
    table.add_row({to_string(precision), format_double(spmv_us, 1),
                   format_double(spmm_us, 1),
                   format_double(spmm_us > 0.0 ? spmv_us / spmm_us : 0.0,
                                 2)});
    JsonRecord record;
    record.set("experiment", "quantization_matmat");
    record.set("precision", to_string(precision));
    record.set("batch", static_cast<std::int64_t>(batch));
    record.set("spmv_batch_us", spmv_us);
    record.set("spmm_us", spmm_us);
    report.add(record);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Gain > 1 means fusing streams into one matmat step would beat\n"
      "per-stream matvecs; ~1 or below (weights already cache-resident)\n"
      "says step_batch's per-stream schedule is the right one here.\n");
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("hidden", "1024",
               "GRU width of the throughput model (the paper's full size)");
  cli.add_flag("threads", std::to_string(ThreadPool::default_thread_count()),
               "thread pool size for the throughput sweep");
  cli.add_flag("frames", "150", "recurrence timesteps per measurement");
  cli.add_flag("batch", "8", "concurrent streams in the batched rows");
  cli.add_flag("keep", "0.25", "BSP column keep fraction");
  cli.add_switch("quick",
                 "small model + short runs (CI smoke run; overrides "
                 "--hidden, --frames, and --batch)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 cli.help("bench_quantization").c_str());
    return 1;
  }

  const bool quick = cli.get_switch("quick");
  const std::size_t hidden =
      quick ? 128 : static_cast<std::size_t>(cli.get_int("hidden"));
  const std::size_t frames =
      quick ? 30 : static_cast<std::size_t>(cli.get_int("frames"));
  const std::size_t batch =
      quick ? 4 : static_cast<std::size_t>(cli.get_int("batch"));
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads"));
  const double keep = cli.get_double("keep");

  JsonReport report;
  run_accuracy_section(quick, report);
  run_throughput_section(hidden, threads, frames, batch, keep, report);
  run_matmat_section(hidden, frames, batch, keep, report);
  report.write_file("quantization.json");
  return 0;
}
