// Precision ablation (paper Sec. V: "Our GPU implementation uses 16-bit
// floating point"): storage precision x pruning, measuring PER and weight
// storage. Reproduces the implicit claim that fp16 weight storage is
// accuracy-free for this model family, and extends it with the int8
// column the paper leaves as future work.
#include <cstdio>

#include "core/bsp.hpp"
#include "core/quantize.hpp"
#include "speech/corpus.hpp"
#include "speech/per.hpp"
#include "train/trainer.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace rtmobile;

  std::printf("== Precision ablation (fp32 / fp16 / int8 weights) ==\n\n");

  speech::CorpusConfig corpus_config;
  corpus_config.num_train_utterances = 32;
  corpus_config.num_test_utterances = 12;
  corpus_config.feature_noise = 0.55;
  corpus_config.seed = 3;
  const speech::Corpus corpus =
      speech::SyntheticTimit(corpus_config).generate();

  ModelConfig model_config;
  model_config.input_dim = 39;
  model_config.hidden_dim = 64;
  model_config.num_layers = 2;
  model_config.num_classes = 39;
  SpeechModel dense(model_config);
  Rng rng(17);
  dense.init(rng);
  {
    Trainer trainer(dense);
    Adam adam(4e-3);
    TrainConfig config;
    config.epochs = 10;
    config.lr_decay = 0.92;
    trainer.train(config, corpus.train, adam, rng);
  }

  // A BSP-pruned variant to show precision composes with pruning.
  SpeechModel pruned = dense;
  {
    BspConfig config;
    config.num_r = 8;
    config.num_c = 4;
    config.col_keep_fraction = 0.25;
    config.rho = 5e-2;
    config.admm_rounds_step1 = 2;
    config.retrain_epochs = 4;
    config.retrain_learning_rate = 2e-3;
    config.prune_fc = false;
    Rng prune_rng(19);
    BspPruner(config).prune(pruned, corpus.train, prune_rng);
  }

  Table table({"model", "precision", "PER", "max |err|", "weight KB"});
  JsonReport report;
  const auto evaluate = [&](const char* label, const SpeechModel& base,
                            WeightPrecision precision) {
    SpeechModel model = base;
    const QuantizationReport q = quantize_model(model, precision);
    const double per = speech::corpus_per(model, corpus.test);
    table.add_row({label, to_string(precision), format_double(per, 2),
                   format_double(q.max_abs_error, 6),
                   format_double(
                       static_cast<double>(q.stored_bytes) / 1024.0, 1)});
    JsonRecord record;
    record.set("experiment", "quantization");
    record.set("model", label);
    record.set("precision", to_string(precision));
    record.set("per", per);
    record.set("max_abs_error", q.max_abs_error);
    record.set("stored_bytes", static_cast<std::int64_t>(q.stored_bytes));
    report.add(record);
  };

  for (const WeightPrecision precision :
       {WeightPrecision::kFp32, WeightPrecision::kFp16,
        WeightPrecision::kInt8PerTensor, WeightPrecision::kInt8PerRow}) {
    evaluate("dense", dense, precision);
  }
  table.add_separator();
  for (const WeightPrecision precision :
       {WeightPrecision::kFp32, WeightPrecision::kFp16,
        WeightPrecision::kInt8PerTensor, WeightPrecision::kInt8PerRow}) {
    evaluate("BSP 4x", pruned, precision);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation (paper's deployment choice): fp16 is PER-neutral at\n"
      "half the storage; int8 costs little with per-row scales.\n");
  report.write_file("quantization.json");
  return 0;
}
