// Block-size auto-tuning ablation (paper Sec. IV-B: the compiler's
// auto-tuner searches the best block size for "an optimal combination of
// accuracy and performance").
//
// Sweeps the column-block count over a recurrent-scale matrix, reporting
// for each candidate the measured kernel time and the retained weight
// energy (the accuracy proxy), and prints the tuner's selection under an
// accuracy floor.
#include <cmath>
#include <cstdio>

#include "compiler/auto_tuner.hpp"
#include "tensor/ops.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace rtmobile;
  constexpr std::size_t kRows = 512;
  constexpr std::size_t kCols = 1024;

  Rng rng(777);
  Matrix weights(kRows, kCols);
  fill_normal(weights.span(), rng, 1.0F);
  // Give the matrix column structure so block size matters for accuracy:
  // a slowly varying column-energy profile.
  for (std::size_t c = 0; c < kCols; ++c) {
    const float scale =
        1.0F + 0.9F * std::sin(static_cast<float>(c) * 0.05F);
    for (std::size_t r = 0; r < kRows; ++r) weights(r, c) *= scale;
  }

  TunerConfig config;
  config.num_c_candidates = {2, 4, 8, 16, 32, 64};
  config.thread_candidates = {1, 2, 4};
  config.lre_candidates = {true};
  config.num_r = 32;
  config.col_keep_fraction = 1.0 / 16.0;
  config.row_keep_fraction = 1.0;
  config.min_energy_retained = 0.10;
  config.timing_iters = 20;
  config.timing_repeats = 3;

  std::printf("== Auto-tuner ablation (block size x threads) ==\n");
  std::printf(
      "matrix %zux%zu at 16x column compression; accuracy floor: retained\n"
      "energy >= %.2f. The tuner picks the fastest candidate above the\n"
      "floor.\n\n",
      kRows, kCols, config.min_energy_retained);

  const TunerResult result = tune_layer(weights, config);

  Table table({"num_c", "threads", "lre", "time us", "energy retained",
               "imbalance", "chosen"});
  JsonReport report;
  for (const TunerCandidate& candidate : result.all) {
    const bool chosen = candidate.num_c == result.best.num_c &&
                        candidate.threads == result.best.threads &&
                        candidate.lre == result.best.lre;
    table.add_row({std::to_string(candidate.num_c),
                   std::to_string(candidate.threads),
                   candidate.lre ? "on" : "off",
                   format_double(candidate.time_us, 1),
                   format_double(candidate.energy_retained, 4),
                   format_double(candidate.imbalance, 3),
                   chosen ? "<== best" : ""});
    JsonRecord record;
    record.set("experiment", "autotune");
    record.set("num_c", static_cast<std::int64_t>(candidate.num_c));
    record.set("threads", static_cast<std::int64_t>(candidate.threads));
    record.set("time_us", candidate.time_us);
    record.set("energy_retained", candidate.energy_retained);
    record.set("chosen", chosen);
    report.add(record);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Observation the paper relies on: finer blocks (larger num_c) retain\n"
      "more energy (better accuracy) but cost more index/gather overhead;\n"
      "the tuner finds the knee.\n");
  report.write_file("autotune.json");
  return 0;
}
