// Network front benchmark: what the epoll TCP layer adds on top of the
// recognizer it fronts, measured end to end over loopback sockets.
//
// Three questions, each against both Recognizer implementations (a
// drive-mode LocalRecognizer and a started ShardedEngine in pump mode):
//
//  - wire-to-first-partial latency: the clock starts when a client
//    writes its first audio byte and stops when the first hypothesis
//    event arrives back — server compute plus both socket hops plus
//    every buffer in between. Reported p50/p99 across repeated rounds
//    of concurrent open-loop streams.
//  - connections-per-core: concurrent connections push audio as fast as
//    TCP accepts it; aggregate real-time throughput (audio seconds
//    served per wall second) divided by compute cores = how many
//    1x real-time streams each core sustains through the wire.
//  - OPEN-time rejection at >2x capacity (sharded backend, the
//    production pump-mode deployment): budget-free flood streams dump
//    more than twice what capacity can serve in the window, then probe
//    connections carrying a tight deadline budget open mid-backlog and
//    must be refused with the typed kRejectedOverBudget — admission
//    control over the wire, not just in-process. (A drive-mode
//    LocalRecognizer drains its whole backlog inside each loop
//    iteration, so real-clock lag never spans an OPEN check; its
//    admission path is covered deterministically in test_net.cpp under
//    a ManualClock.)
//
// Results go to net.json (a CI artifact).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "hw/thread_pool.hpp"
#include "net/recognizer_server.hpp"
#include "net/wire_client.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "serve/local_recognizer.hpp"
#include "serve/sharded_engine.hpp"
#include "sparse/block_mask.hpp"
#include "train/projection.hpp"
#include "util/cli.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

constexpr double kSampleRateHz = 16000.0;
constexpr std::size_t kChunkMs = 100;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

/// One served backend plus everything that keeps it alive.
struct NetBackend {
  std::string name;
  std::size_t cores = 1;  // compute cores (event-loop thread not counted)
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<SpeechModel> model;
  std::unique_ptr<CompiledSpeechModel> compiled;  // local only
  std::unique_ptr<serve::Recognizer> recognizer;
  serve::ShardedEngine* sharded = nullptr;  // owned by `recognizer`
};

std::map<std::string, BlockMask> prune(SpeechModel& model, double keep) {
  std::map<std::string, BlockMask> masks;
  ParamSet params;
  model.register_params(params);
  for (const std::string& name : model.weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 8, 4, keep);
    mask.apply(w);
    masks.emplace(name, std::move(mask));
  }
  return masks;
}

NetBackend build_local(std::size_t hidden, std::size_t threads, double keep) {
  NetBackend backend;
  backend.name = "local";
  backend.cores = threads;
  Rng rng(1234);
  backend.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  backend.model->init(rng);
  const auto masks = prune(*backend.model, keep);
  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.threads = threads;
  if (threads > 1) backend.pool = std::make_unique<ThreadPool>(threads);
  backend.compiled = std::make_unique<CompiledSpeechModel>(
      *backend.model, masks, options, backend.pool.get());
  backend.recognizer =
      std::make_unique<serve::LocalRecognizer>(*backend.compiled);
  return backend;
}

NetBackend build_sharded(std::size_t hidden, std::size_t shards,
                         double keep) {
  NetBackend backend;
  backend.name = "sharded";
  backend.cores = shards;  // threads_per_shard = 1: one pump core each
  Rng rng(1234);
  backend.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  backend.model->init(rng);
  const auto masks = prune(*backend.model, keep);
  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  serve::ShardConfig config;
  config.shards = shards;
  auto engine = std::make_unique<serve::ShardedEngine>(*backend.model, masks,
                                                       options, config);
  engine->start();
  backend.sharded = engine.get();
  backend.recognizer = std::move(engine);
  return backend;
}

std::vector<float> make_waveform(double seconds, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(static_cast<std::size_t>(seconds * kSampleRateHz));
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

struct RunResult {
  std::size_t finals = 0;
  std::size_t rejected = 0;  // typed OPEN-time refusals
  std::size_t failed = 0;
  std::vector<double> first_partial_ms;
  double wall_seconds = 0.0;
};

/// One full client stream; the reader thread timestamps the first
/// partial as it arrives (same scheme as examples/load_client.cpp).
void run_stream(std::uint16_t port, double seconds, double budget,
                std::uint64_t seed, std::size_t index, RunResult& result,
                std::mutex& mutex) {
  bool got_final = false;
  bool rejected = false;
  bool failed = false;
  double first_partial_ms = -1.0;
  try {
    net::WireClient client;
    client.connect("127.0.0.1", port);
    net::OpenRequest request;
    request.deadline_budget_seconds = budget;
    request.session_key = index;
    net::WireError error = net::WireError::kProtocol;
    if (!client.open(request, &error)) {
      rejected = error == net::WireError::kRejectedOverBudget ||
                 error == net::WireError::kBackpressureOverflow;
      failed = !rejected;
    } else {
      const std::vector<float> wave = make_waveform(seconds, seed);
      const Clock::time_point first_audio = Clock::now();
      std::thread reader([&client, &got_final, &failed, &first_partial_ms,
                          first_audio] {
        try {
          for (;;) {
            const auto message = client.read_message();
            if (!message) return;
            if (message->type == net::FrameType::kError) {
              failed = true;
              return;
            }
            if (first_partial_ms < 0.0) {
              first_partial_ms = seconds_since(first_audio) * 1e3;
            }
            if (message->event.is_final) {
              got_final = true;
              return;
            }
          }
        } catch (const std::exception&) {
          failed = true;
        }
      });
      const auto chunk = static_cast<std::size_t>(
          kSampleRateHz * static_cast<double>(kChunkMs) / 1000.0);
      for (std::size_t offset = 0; offset < wave.size(); offset += chunk) {
        client.send_audio(
            {wave.data() + offset, std::min(chunk, wave.size() - offset)});
      }
      client.send_finish();
      reader.join();
      if (got_final) client.send_close();
    }
    client.disconnect();
  } catch (const std::exception&) {
    failed = true;
  }
  const std::lock_guard<std::mutex> lock(mutex);
  result.finals += got_final ? 1 : 0;
  result.rejected += rejected ? 1 : 0;
  result.failed += failed ? 1 : 0;
  if (first_partial_ms >= 0.0) {
    result.first_partial_ms.push_back(first_partial_ms);
  }
}

/// `connections` concurrent streams, each `seconds` of audio, open-loop.
RunResult run_wire_load(std::uint16_t port, std::size_t connections,
                        double seconds, double budget,
                        std::uint64_t seed_base) {
  RunResult result;
  std::mutex mutex;
  std::vector<std::thread> workers;
  workers.reserve(connections);
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < connections; ++i) {
    workers.emplace_back([port, seconds, budget, seed_base, i, &result,
                          &mutex] {
      run_stream(port, seconds, budget, seed_base + i, i, result, mutex);
    });
  }
  for (std::thread& w : workers) w.join();
  result.wall_seconds = seconds_since(start);
  return result;
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("hidden", "256", "GRU hidden size of the served model");
  cli.add_flag("threads", std::to_string(ThreadPool::default_thread_count()),
               "local backend thread-pool width");
  cli.add_flag("shards", "2", "sharded backend engine replicas");
  cli.add_flag("keep", "0.25", "BSP column keep fraction");
  cli.add_flag("latency-rounds", "8",
               "rounds of the first-partial latency probe");
  cli.add_flag("latency-connections", "4",
               "concurrent streams per latency round");
  cli.add_flag("probe-seconds", "1", "audio per latency-probe stream");
  cli.add_flag("capacity-seconds", "2",
               "audio per stream in the saturation run");
  cli.add_flag("budget", "0.05",
               "deadline budget (seconds) carried by rejection probes");
  cli.add_switch("quick", "small model + short audio (CI smoke run; "
                          "overrides the size flags)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help("bench_net").c_str());
    return 1;
  }

  const bool quick = cli.get_switch("quick");
  const std::size_t hidden =
      quick ? 96 : static_cast<std::size_t>(cli.get_int("hidden"));
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads"));
  const std::size_t shards = static_cast<std::size_t>(cli.get_int("shards"));
  const double keep = cli.get_double("keep");
  const std::size_t latency_rounds =
      quick ? 2 : static_cast<std::size_t>(cli.get_int("latency-rounds"));
  const std::size_t latency_connections =
      static_cast<std::size_t>(cli.get_int("latency-connections"));
  const double probe_seconds =
      quick ? 0.25 : cli.get_double("probe-seconds");
  const double capacity_seconds =
      quick ? 0.5 : cli.get_double("capacity-seconds");
  const double budget = cli.get_double("budget");

  std::printf("Network front: hidden=%zu threads=%zu shards=%zu%s\n\n",
              hidden, threads, shards, quick ? " (quick)" : "");

  JsonReport report;
  Table table({"backend", "cores", "first-partial p50 ms",
               "first-partial p99 ms", "agg xRT", "conns/core"});

  for (const bool use_sharded : {false, true}) {
    NetBackend backend = use_sharded
                             ? build_sharded(hidden, shards, keep)
                             : build_local(hidden, threads, keep);
    net::ServerConfig server_config;
    server_config.drive_recognizer = backend.sharded == nullptr;
    net::RecognizerServer server(*backend.recognizer, server_config);
    server.start();

    // Warm caches and the accept path before anything is timed.
    (void)run_wire_load(server.port(), 1, 0.2, 0.0, 100);

    // Wire-to-first-partial latency under moderate concurrent load.
    std::vector<double> first_partial;
    for (std::size_t round = 0; round < latency_rounds; ++round) {
      const RunResult r =
          run_wire_load(server.port(), latency_connections, probe_seconds,
                        0.0, 1000 * (round + 1));
      first_partial.insert(first_partial.end(), r.first_partial_ms.begin(),
                           r.first_partial_ms.end());
    }
    const double p50 = percentile(first_partial, 0.50);
    const double p99 = percentile(first_partial, 0.99);

    // Saturation: enough unpaced connections to keep every core busy;
    // aggregate xRT = audio seconds served per wall second.
    const std::size_t sat_connections = std::max<std::size_t>(
        8, 2 * backend.cores);
    const RunResult sat = run_wire_load(server.port(), sat_connections,
                                        capacity_seconds, 0.0, 5000);
    const double audio_total =
        static_cast<double>(sat.finals) * capacity_seconds;
    const double aggregate_xrt =
        sat.wall_seconds > 0.0 ? audio_total / sat.wall_seconds : 0.0;
    const double conns_per_core =
        aggregate_xrt / static_cast<double>(backend.cores);

    table.add_row({backend.name, std::to_string(backend.cores),
                   format_double(p50, 2), format_double(p99, 2),
                   format_double(aggregate_xrt, 1),
                   format_double(conns_per_core, 1)});

    JsonRecord latency_record;
    latency_record.set("section", "latency");
    latency_record.set("backend", backend.name);
    latency_record.set("connections",
                       static_cast<std::int64_t>(latency_connections));
    latency_record.set("rounds",
                       static_cast<std::int64_t>(latency_rounds));
    latency_record.set("probe_seconds", probe_seconds);
    latency_record.set("samples",
                       static_cast<std::int64_t>(first_partial.size()));
    latency_record.set("first_partial_p50_ms", p50);
    latency_record.set("first_partial_p99_ms", p99);
    report.add(std::move(latency_record));

    JsonRecord capacity_record;
    capacity_record.set("section", "capacity");
    capacity_record.set("backend", backend.name);
    capacity_record.set("cores", static_cast<std::int64_t>(backend.cores));
    capacity_record.set("connections",
                        static_cast<std::int64_t>(sat_connections));
    capacity_record.set("finals", static_cast<std::int64_t>(sat.finals));
    capacity_record.set("failed", static_cast<std::int64_t>(sat.failed));
    capacity_record.set("audio_seconds", audio_total);
    capacity_record.set("wall_seconds", sat.wall_seconds);
    capacity_record.set("aggregate_xrt", aggregate_xrt);
    capacity_record.set("connections_per_core", conns_per_core);
    report.add(std::move(capacity_record));

    // OPEN-time rejection at >2x capacity (pump-mode deployment only;
    // see file comment for why drive mode cannot hold real-clock lag
    // across an OPEN check).
    if (backend.sharded != nullptr) {
      constexpr double kLoadFactor = 2.5;
      const double window = quick ? 0.4 : 1.0;
      const std::size_t flood_streams = std::max<std::size_t>(
          4, 2 * backend.cores);
      const double flood_total = kLoadFactor *
                                 std::max(1.0, aggregate_xrt) * window;
      const double flood_seconds = std::clamp(
          flood_total / static_cast<double>(flood_streams), 1.0, 30.0);

      // Wait out the saturation run's tail (queued closes, final-event
      // flushes) first: leftover load on one shard would steer every
      // flood open to the other, and a half-flooded fleet correctly
      // keeps admitting (the router finds the shard that can still make
      // the deadline) — no rejection to demonstrate.
      for (int spin = 0; spin < 500; ++spin) {
        bool idle = server.connection_count() == 0;
        for (std::size_t s = 0;
             idle && s < backend.sharded->shard_count(); ++s) {
          idle = backend.sharded->load(s) == 0;
        }
        if (idle) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }

      RunResult flood_result;
      std::mutex flood_mutex;
      std::vector<std::thread> floods;
      floods.reserve(flood_streams);
      const std::uint16_t port = server.port();
      for (std::size_t i = 0; i < flood_streams; ++i) {
        floods.emplace_back([port, flood_seconds, i, &flood_result,
                             &flood_mutex] {
          run_stream(port, flood_seconds, 0.0, 9000 + i, i, flood_result,
                     flood_mutex);
        });
      }
      // Probe only once every shard's published lag exceeds the budget:
      // the router picks the least-loaded shard, so the whole fleet must
      // be behind for a refusal to be guaranteed. Bounded wait so a
      // failed flood cannot hang the bench.
      for (int spin = 0; spin < 500; ++spin) {
        double min_lag = std::numeric_limits<double>::infinity();
        for (std::size_t s = 0; s < backend.sharded->shard_count(); ++s) {
          min_lag = std::min(min_lag, backend.sharded->shard_lag_seconds(s));
        }
        if (min_lag > 2.0 * budget) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      std::size_t probes = 0;
      std::size_t rejected = 0;
      std::size_t admitted = 0;
      for (std::size_t i = 0; i < 8; ++i) {
        RunResult probe;
        std::mutex probe_mutex;
        run_stream(port, 0.2, budget, 9500 + i, i, probe, probe_mutex);
        ++probes;
        rejected += probe.rejected;
        admitted += probe.finals;
      }
      for (std::thread& f : floods) f.join();

      std::printf(
          "open admission (sharded, %.1fx capacity): %zu/%zu probes with "
          "a %.0f ms budget refused as kRejectedOverBudget, %zu admitted "
          "(%zu flood streams x %.1f s audio)\n\n",
          kLoadFactor, rejected, probes, budget * 1e3, admitted,
          flood_streams, flood_seconds);

      JsonRecord rejection_record;
      rejection_record.set("section", "open_rejection");
      rejection_record.set("backend", backend.name);
      rejection_record.set("load_factor", kLoadFactor);
      rejection_record.set("budget_seconds", budget);
      rejection_record.set("flood_streams",
                           static_cast<std::int64_t>(flood_streams));
      rejection_record.set("flood_seconds_each", flood_seconds);
      rejection_record.set("probes", static_cast<std::int64_t>(probes));
      rejection_record.set("rejected",
                           static_cast<std::int64_t>(rejected));
      rejection_record.set("admitted",
                           static_cast<std::int64_t>(admitted));
      rejection_record.set("flood_finals",
                           static_cast<std::int64_t>(flood_result.finals));
      report.add(std::move(rejection_record));
    }

    server.stop();
    if (backend.sharded != nullptr) backend.sharded->stop();
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "first-partial = first audio byte written to first hypothesis event "
      "received, over loopback TCP; agg xRT = audio seconds served per "
      "wall second at saturation; conns/core = concurrent 1x real-time "
      "streams each compute core sustains through the wire.\n");

  report.write_file("net.json");
  std::printf("wrote net.json (%zu records)\n", report.size());
  return 0;
}
