// Fused batched-step benchmark: the per-stream matvec baseline vs the
// fused batched-matmat spine, swept over batch width x precision x
// sparsity on the paper's full-size GRU (153 -> 1024 -> 1024 -> 39).
//
// Both sides of every cell run the identical step_batch driver; the only
// difference is CompilerOptions::fused (kNever = the historical
// per-stream path, kAlways = the fused spine). Per cell: steady-state
// aggregate frames/s and the fused/baseline speedup. The headline cell
// — int8 packed weights + int8 activations at width >= 8 — is where the
// fused step amortizes each weight matrix's traffic across the whole
// batch AND runs code-by-code integer dot products. The sweep is
// emitted as fused.json (a CI artifact).
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "hw/thread_pool.hpp"
#include "hw/timer.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "sparse/block_mask.hpp"
#include "tensor/ops.hpp"
#include "tensor/precision.hpp"
#include "train/projection.hpp"
#include "util/cli.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

struct PrecisionCase {
  const char* name;
  WeightPrecision weights;
  ActivationPrecision activations;
};

struct BenchSetup {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
};

BenchSetup build_model(const ModelConfig& config, double keep) {
  BenchSetup setup;
  Rng rng(1234);
  setup.model = std::make_unique<SpeechModel>(config);
  setup.model->init(rng);
  ParamSet params;
  setup.model->register_params(params);
  for (const std::string& name : setup.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 8, 4, keep);
    apply_row_pruning(w, 0.8, mask);
    mask.apply(w);
    setup.masks.emplace(name, std::move(mask));
  }
  return setup;
}

std::unique_ptr<CompiledSpeechModel> compile(const BenchSetup& setup,
                                             const PrecisionCase& precision,
                                             FusedMode mode,
                                             ThreadPool* pool) {
  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.precision = precision.weights;
  options.activation = precision.activations;
  options.fused = mode;
  if (pool != nullptr) options.threads = pool->thread_count();
  return std::make_unique<CompiledSpeechModel>(*setup.model, setup.masks,
                                               options, pool);
}

struct CellResult {
  double frames_per_sec = 0.0;
  bool fused = false;  // what the dispatch actually ran
};

/// Steady-state step_batch throughput at a fixed batch width: `width`
/// streams advanced `rounds` timesteps on a shared random frame batch
/// (weight traffic per round is what the cell measures; the frame
/// content is irrelevant).
CellResult measure(const CompiledSpeechModel& m, std::size_t width,
                   std::size_t rounds) {
  Rng rng(99);
  Matrix features(width, m.config().input_dim);
  fill_normal(features.span(), rng, 1.0F);
  Matrix logits(width, m.config().num_classes);
  std::vector<StreamState> states(width, m.make_state());
  std::vector<StreamState*> ptrs;
  for (StreamState& s : states) ptrs.push_back(&s);

  CellResult result;
  for (std::size_t warm = 0; warm < 3; ++warm) {
    result.fused = m.step_batch(features, ptrs, logits).fused;
  }
  WallTimer timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    m.step_batch(features, ptrs, logits);
  }
  const double wall_us = timer.elapsed_us();
  if (wall_us > 0.0) {
    result.frames_per_sec =
        static_cast<double>(width * rounds) / (wall_us * 1e-6);
  }
  return result;
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("threads", "4", "thread pool size (mobile big-core count)");
  cli.add_flag("keep", "0.25", "BSP column keep fraction");
  cli.add_flag("frames", "96",
               "timed stream-frames per cell (split into rounds by width)");
  cli.add_switch("quick", "small model + short sweep (CI smoke run)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 cli.help("bench_fused").c_str());
    return 1;
  }

  const bool quick = cli.get_switch("quick");
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads"));
  const double keep = cli.get_double("keep");
  const std::size_t frames =
      quick ? 32 : static_cast<std::size_t>(cli.get_int("frames"));
  const ModelConfig config =
      quick ? ModelConfig::scaled(192) : ModelConfig::paper_full_size();

  std::printf(
      "Fused batched step vs per-stream matvecs: %zu->%zux%zu->%zu "
      "keep=%.2f threads=%zu%s\n\n",
      config.input_dim, config.hidden_dim, config.num_layers,
      config.num_classes, keep, threads, quick ? " (quick)" : "");

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  const std::vector<PrecisionCase> precisions = {
      {"fp32", WeightPrecision::kFp32, ActivationPrecision::kFp32},
      {"int8", WeightPrecision::kInt8PerRow, ActivationPrecision::kFp32},
      {"int8+act8", WeightPrecision::kInt8PerRow,
       ActivationPrecision::kInt8},
  };
  const std::vector<std::size_t> widths =
      quick ? std::vector<std::size_t>{1, 4, 8}
            : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};

  JsonReport report;
  Table table({"precision", "width", "baseline fr/s", "fused fr/s",
               "speedup"});
  const BenchSetup setup = build_model(config, keep);
  for (const PrecisionCase& precision : precisions) {
    const auto baseline =
        compile(setup, precision, FusedMode::kNever, pool.get());
    const auto fused =
        compile(setup, precision, FusedMode::kAlways, pool.get());
    for (const std::size_t width : widths) {
      const std::size_t rounds = std::max<std::size_t>(12, frames / width);
      const CellResult base = measure(*baseline, width, rounds);
      const CellResult fast = measure(*fused, width, rounds);
      const double speedup = base.frames_per_sec > 0.0
                                 ? fast.frames_per_sec / base.frames_per_sec
                                 : 0.0;
      table.add_row({precision.name, std::to_string(width),
                     format_double(base.frames_per_sec, 0),
                     format_double(fast.frames_per_sec, 0),
                     format_double(speedup, 2)});

      JsonRecord record;
      record.set("section", "width_sweep");
      record.set("precision", precision.name);
      record.set("activation", to_string(precision.activations));
      record.set("width", static_cast<std::int64_t>(width));
      record.set("keep", keep);
      record.set("threads", static_cast<std::int64_t>(threads));
      record.set("hidden", static_cast<std::int64_t>(config.hidden_dim));
      record.set("rounds", static_cast<std::int64_t>(rounds));
      record.set("fused_dispatched", fast.fused);
      record.set("baseline_frames_per_sec", base.frames_per_sec);
      record.set("fused_frames_per_sec", fast.frames_per_sec);
      record.set("speedup", speedup);
      report.add(std::move(record));
    }
  }

  // Sparsity sweep at the headline cell (int8+act8, width 8): how the
  // fused win scales as the kept-column fraction shrinks.
  if (!quick) {
    const std::size_t width = 8;
    const std::size_t rounds = std::max<std::size_t>(12, frames / width);
    for (const double sweep_keep : {0.1, 0.25, 0.5}) {
      const BenchSetup sparse = build_model(config, sweep_keep);
      const auto baseline = compile(sparse, precisions.back(),
                                    FusedMode::kNever, pool.get());
      const auto fused = compile(sparse, precisions.back(),
                                 FusedMode::kAlways, pool.get());
      const CellResult base = measure(*baseline, width, rounds);
      const CellResult fast = measure(*fused, width, rounds);
      const double speedup = base.frames_per_sec > 0.0
                                 ? fast.frames_per_sec / base.frames_per_sec
                                 : 0.0;
      table.add_row({"int8+act8 keep=" + format_double(sweep_keep, 2),
                     std::to_string(width),
                     format_double(base.frames_per_sec, 0),
                     format_double(fast.frames_per_sec, 0),
                     format_double(speedup, 2)});

      JsonRecord record;
      record.set("section", "sparsity_sweep");
      record.set("precision", precisions.back().name);
      record.set("width", static_cast<std::int64_t>(width));
      record.set("keep", sweep_keep);
      record.set("threads", static_cast<std::int64_t>(threads));
      record.set("baseline_frames_per_sec", base.frames_per_sec);
      record.set("fused_frames_per_sec", fast.frames_per_sec);
      record.set("speedup", speedup);
      report.add(std::move(record));
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "baseline = the same step_batch driver compiled with fused=never "
      "(per-stream matvecs, streams partitioned across the pool); fused "
      "= fused=always (each weight matrix driven once per layer per "
      "round over the whole batch). fp32 rows are bit-identical by "
      "construction (tests/test_fused.cpp); int8+act8 additionally "
      "quantizes the activation panels to int8 codes.\n");

  report.write_file("fused.json");
  std::printf("wrote fused.json (%zu records)\n", report.size());
  return 0;
}
