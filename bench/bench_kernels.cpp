// Kernel microbenchmarks (google-benchmark): the primitive operations the
// table-level harnesses are built from. Useful for regression-tracking the
// kernels independently of the experiment harnesses.
#include <benchmark/benchmark.h>

#include <memory>

#include "compiler/execution_plan.hpp"
#include "hw/thread_pool.hpp"
#include "sparse/bank_balanced.hpp"
#include "sparse/block_circulant.hpp"
#include "sparse/bspc.hpp"
#include "sparse/csr.hpp"
#include "sparse/fft.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  fill_normal(m.span(), rng, 1.0F);
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  fill_normal(v.span(), rng, 1.0F);
  return v;
}

void BM_DenseGemv(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix w = random_matrix(n, n, 1);
  const Vector x = random_vector(n, 2);
  Vector y(n);
  for (auto _ : state) {
    gemv(w, x.span(), y.span());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenseGemv)->Arg(256)->Arg(1024);

void BM_CsrSpmv(benchmark::State& state) {
  const std::size_t n = 1024;
  const double compression = static_cast<double>(state.range(0));
  Matrix w = random_matrix(n, n, 3);
  w = project_magnitude(w, 1.0 / compression);
  const CsrMatrix csr = CsrMatrix::from_dense(w);
  const Vector x = random_vector(n, 4);
  Vector y(n);
  for (auto _ : state) {
    csr.spmv(x.span(), y.span());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csr.nnz()));
}
BENCHMARK(BM_CsrSpmv)->Arg(10)->Arg(100);

void BM_BspcSpmv(benchmark::State& state) {
  const std::size_t n = 1024;
  const double compression = static_cast<double>(state.range(0));
  const bool lre = state.range(1) != 0;
  const Matrix w = random_matrix(n, n, 5);
  const BlockMask mask = block_column_mask(w, 64, 16, 1.0 / compression);
  const BspcMatrix bspc = BspcMatrix::from_dense(w, mask);
  const Vector x = random_vector(n, 6);
  Vector y(n);
  for (auto _ : state) {
    if (lre) {
      bspc.spmv(x.span(), y.span());
    } else {
      bspc.spmv_no_lre(x.span(), y.span());
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bspc.nnz()));
}
BENCHMARK(BM_BspcSpmv)
    ->Args({10, 1})
    ->Args({10, 0})
    ->Args({100, 1})
    ->Args({100, 0});

void BM_BspcThreaded(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 2048;
  const Matrix w = random_matrix(n, n, 7);
  const BlockMask mask = block_column_mask(w, 128, 16, 1.0 / 16.0);
  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.threads = threads;
  const LayerPlan plan = LayerPlan::compile(w, &mask, options);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  const Vector x = random_vector(n, 8);
  Vector y(n);
  for (auto _ : state) {
    plan.execute(x.span(), y.span(), pool.get());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BspcThreaded)->Arg(1)->Arg(2)->Arg(4);

void BM_BankBalancedSpmv(benchmark::State& state) {
  const std::size_t n = 1024;
  const Matrix w = random_matrix(n, n, 9);
  const auto bbs = BankBalancedMatrix::from_dense(w, 64, 8);  // 8x
  const Vector x = random_vector(n, 10);
  Vector y(n);
  for (auto _ : state) {
    bbs.spmv(x.span(), y.span());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BankBalancedSpmv);

void BM_BlockCirculantMatvec(benchmark::State& state) {
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 1024;
  const Matrix w = random_matrix(n, n, 11);
  const auto bc = BlockCirculantMatrix::from_dense(w, block);
  const Vector x = random_vector(n, 12);
  Vector y(n);
  for (auto _ : state) {
    bc.matvec(x.span(), y.span());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BlockCirculantMatvec)->Arg(8)->Arg(64);

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  std::vector<Complex> data(n);
  for (auto& c : data) c = Complex(rng.normal(), rng.normal());
  for (auto _ : state) {
    fft_inplace(data, false);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace rtmobile
