// Reproduces Table II: inference time, GOP/s, and ESE-normalized energy
// efficiency of the full-size GRU (153 -> 1024 -> 1024) on the mobile GPU
// and CPU, at the paper's ten compression points.
//
// Two sections are printed:
//  1. Device-model reproduction — the calibrated Adreno 640 / Kryo 485
//     roofline models (see src/hw/device_model.hpp) evaluated on the exact
//     workloads of Table II, with the paper's numbers alongside.
//  2. Host-measured validation — the real compiled BSPC kernels executed
//     on this machine (full-size model, 30-timestep inference frame),
//     demonstrating the same qualitative behaviour with measured code.
#include <cstdio>
#include <memory>

#include "compiler/gru_executor.hpp"
#include "core/bsp.hpp"
#include "hw/device_model.hpp"
#include "hw/energy_model.hpp"
#include "hw/paper_reference.hpp"
#include "hw/thread_pool.hpp"
#include "hw/timer.hpp"
#include "rnn/model.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

constexpr std::size_t kFramesPerInference = 30;  // makes dense = 0.58 GOP

/// Keep fractions that land on the paper's overall compression rate while
/// honouring its column-rate target (see DESIGN.md "Compression
/// accounting").
struct KeepPlan {
  double col_keep;
  double row_keep;
};

KeepPlan keep_plan_for(const paper::Table1BspRow& row) {
  const double col_keep = 1.0 / row.col_rate;
  const double row_keep =
      row.compression_rate > row.col_rate
          ? row.col_rate / row.compression_rate
          : 1.0;
  return {col_keep, row_keep};
}

void print_device_model_section() {
  const DeviceModel gpu = DeviceModel::adreno640_gpu();
  const DeviceModel cpu = DeviceModel::kryo485_cpu();
  const EnergyModel energy;

  std::printf("== Table II (device-model reproduction) ==\n");
  std::printf(
      "Device models calibrated on the dense and 301x endpoints only; all\n"
      "interior rows are model predictions. 'paper' columns are the\n"
      "published measurements.\n\n");

  Table table({"CR", "GOP", "GPU us", "GPU us(paper)", "GPU GOP/s",
               "GPU eff", "GPU eff(paper)", "CPU us", "CPU us(paper)",
               "CPU eff", "CPU eff(paper)"});
  JsonReport report;
  for (const auto& row : paper::table2()) {
    const Workload workload{row.gop, row.compression_rate};
    const double gpu_us = gpu.time_us(workload);
    const double cpu_us = cpu.time_us(workload);
    const double gpu_eff = energy.normalized_efficiency(gpu, workload);
    const double cpu_eff = energy.normalized_efficiency(cpu, workload);
    table.add_row({format_double(row.compression_rate, 0) + "x",
                   format_double(row.gop, 4),
                   format_double(gpu_us, 2),
                   format_double(row.gpu_time_us, 2),
                   format_double(row.gop / gpu_us * 1e6, 2),
                   format_double(gpu_eff, 2),
                   format_double(row.gpu_energy_eff, 2),
                   format_double(cpu_us, 2),
                   format_double(row.cpu_time_us, 2),
                   format_double(cpu_eff, 2),
                   format_double(row.cpu_energy_eff, 2)});
    JsonRecord record;
    record.set("experiment", "table2_model");
    record.set("compression_rate", row.compression_rate);
    record.set("gop", row.gop);
    record.set("gpu_time_us", gpu_us);
    record.set("gpu_time_us_paper", row.gpu_time_us);
    record.set("gpu_eff", gpu_eff);
    record.set("gpu_eff_paper", row.gpu_energy_eff);
    record.set("cpu_time_us", cpu_us);
    record.set("cpu_time_us_paper", row.cpu_time_us);
    record.set("cpu_eff", cpu_eff);
    record.set("cpu_eff_paper", row.cpu_energy_eff);
    report.add(record);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "ESE reference: %.1f us/frame at %.0f W -> %.1f frames/J (eff 1.0).\n"
      "Paper claim check: GPU time at 245x (%.1f us, modeled) matches\n"
      "ESE's 82.7 us with ~40x the energy efficiency.\n\n",
      paper::kEseTimeUs, paper::kEsePowerW,
      EseFpgaReference{}.frames_per_joule(),
      gpu.time_us({0.0028, 245.0}));
  report.write_file("table2_model.json");
}

void print_host_measured_section() {
  std::printf("== Table II (host-measured BSPC kernels, full-size GRU) ==\n");
  std::printf(
      "Real compiled kernels on this machine (fp32, %zu threads), one\n"
      "inference frame = %zu timesteps. Absolute numbers differ from the\n"
      "Snapdragon 855; the shape (time falls with compression, effective\n"
      "GOP/s falls too) is the reproduction target.\n\n",
      ThreadPool::default_thread_count(), kFramesPerInference);

  const std::size_t threads = ThreadPool::default_thread_count();
  ThreadPool pool(threads);
  Rng rng(4242);
  SpeechModel model(ModelConfig::paper_full_size());
  model.init(rng);

  Table table({"CR(target)", "CR(achieved)", "nnz", "time/frame us",
               "eff GOP/s", "speedup", "weight MB (fp16)"});
  JsonReport report;
  double dense_time_us = 0.0;
  for (const auto& row : paper::table1_bsp()) {
    SpeechModel pruned = model;  // fresh copy per point
    BspConfig config;
    config.num_r = 64;
    config.num_c = 16;
    const KeepPlan plan = keep_plan_for(row);
    config.col_keep_fraction = plan.col_keep;
    config.row_keep_fraction = plan.row_keep;
    // The paper's Para. No. column implies every weight matrix is pruned
    // (9.6M -> 0.03M at 301x); include the FC head so achieved compression
    // matches.
    config.prune_fc = true;
    BspPruner pruner(config);
    const BspResult result = pruner.prune_one_shot(pruned);

    CompilerOptions options;
    options.format = row.compression_rate == 1.0 ? SparseFormat::kDense
                                                 : SparseFormat::kBspc;
    options.threads = threads;
    options.value_bytes = 2;  // paper's fp16 GPU storage accounting
    const CompiledSpeechModel compiled(pruned, result.block_masks, options,
                                       &pool);

    const std::size_t iters = row.compression_rate < 5.0 ? 1 : 3;
    const double time_us = time_best_of_us(
        [&] { compiled.run_recurrence(kFramesPerInference); }, iters, 2);
    if (row.compression_rate == 1.0) dense_time_us = time_us;
    const double nnz_gop = 2.0 * static_cast<double>(compiled.total_nnz()) *
                           static_cast<double>(kFramesPerInference) / 1e9;
    table.add_row(
        {format_double(row.compression_rate, 0) + "x",
         format_double(result.stats.overall_rate(), 1) + "x",
         format_si(static_cast<double>(compiled.total_nnz()), 2),
         format_double(time_us, 1),
         format_double(nnz_gop / time_us * 1e6, 2),
         format_double(dense_time_us / time_us, 2) + "x",
         format_double(static_cast<double>(compiled.total_memory_bytes()) /
                           1e6,
                       2)});
    JsonRecord record;
    record.set("experiment", "table2_host");
    record.set("compression_rate_target", row.compression_rate);
    record.set("compression_rate_achieved", result.stats.overall_rate());
    record.set("time_us", time_us);
    record.set("speedup", dense_time_us / time_us);
    record.set("eff_gops", nnz_gop / time_us * 1e6);
    report.add(record);
  }
  std::printf("%s\n", table.to_string().c_str());
  report.write_file("table2_host.json");
}

}  // namespace
}  // namespace rtmobile

int main() {
  rtmobile::print_device_model_section();
  rtmobile::print_host_measured_section();
  return 0;
}
