// Overload benchmark: tail lag and deadline-miss rate per scheduler
// policy when offered load exceeds engine capacity.
//
// The serving question RTMobile's "beyond real time" claim turns into:
// when more audio arrives per second than the engine can process, which
// streams fall behind and by how much? This bench drives a
// LocalRecognizer with synthetic open-loop arrivals — every stream
// pushes 10 ms audio chunks on its own clock, independent of how fast
// the engine drains them — at 1x to 4x of measured capacity, under each
// scheduler/overload policy, and reports the per-step worst-stream lag
// distribution (p50/p95/p99) plus the deadline-miss rate and shed-frame
// counts.
//
// Time is virtual (runtime::ManualClock): each engine step advances the
// clock by the step's measured wall time, and idle gaps jump straight
// to the next arrival. Compute cost is real, but arrival pacing is
// exact and idle time costs nothing, so a multi-minute overload
// scenario runs in seconds of wall time. Offered load is
// load_factor x capacity: the stream count is capped (--max-streams)
// and each stream's arrival clock is sped up to make up the remainder,
// so "2x" always means twice the audio per second the engine sustains.
//
// Expected shape (the acceptance evidence for deadline-aware
// scheduling): round-robin under overload lets lag grow without bound
// for every stream and misses almost every deadline; EDF/lag-aware with
// shedding hold p99 lag near the deadline budget and keep the miss rate
// bounded, trading dropped frames for bounded staleness; lag-aware with
// rejection sacrifices whole streams to keep the survivors real-time.
// The sweep is written to overload.json (a CI artifact).
#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "hw/thread_pool.hpp"
#include "hw/timer.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "runtime/clock.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/scheduler.hpp"
#include "serve/local_recognizer.hpp"
#include "sparse/block_mask.hpp"
#include "speech/streaming_mfcc.hpp"
#include "train/projection.hpp"
#include "util/cli.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

struct BenchSetup {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<SpeechModel> model;
  std::unique_ptr<CompiledSpeechModel> compiled;
};

BenchSetup build_model(std::size_t hidden, std::size_t threads,
                       double keep_fraction) {
  BenchSetup setup;
  Rng rng(1234);
  ModelConfig config = ModelConfig::scaled(hidden);
  setup.model = std::make_unique<SpeechModel>(config);
  setup.model->init(rng);

  std::map<std::string, BlockMask> masks;
  ParamSet params;
  setup.model->register_params(params);
  for (const std::string& name : setup.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 8, 4, keep_fraction);
    mask.apply(w);
    masks.emplace(name, std::move(mask));
  }

  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.threads = threads;
  if (threads > 1) setup.pool = std::make_unique<ThreadPool>(threads);
  setup.compiled = std::make_unique<CompiledSpeechModel>(
      *setup.model, masks, options, setup.pool.get());
  return setup;
}

std::vector<float> make_waveform(double seconds, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(static_cast<std::size_t>(seconds * 16000.0));
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

/// One scheduler/overload pairing under test.
struct PolicyScenario {
  const char* name;
  runtime::SchedulerPolicy scheduler;
  runtime::OverloadPolicy overload;
};

constexpr PolicyScenario kScenarios[] = {
    {"round-robin", runtime::SchedulerPolicy::kRoundRobin,
     runtime::OverloadPolicy::kNone},
    {"edf+shed", runtime::SchedulerPolicy::kEarliestDeadlineFirst,
     runtime::OverloadPolicy::kShed},
    {"lag-aware+shed", runtime::SchedulerPolicy::kLagAware,
     runtime::OverloadPolicy::kShed},
    {"lag-aware+reject", runtime::SchedulerPolicy::kLagAware,
     runtime::OverloadPolicy::kReject},
};

/// Closed-loop calibration: how many 1x real-time streams the engine
/// sustains (its aggregate real-time factor on a saturated batch —
/// calibrate with the same stream count the overload runs use so the
/// batching efficiency matches).
double measure_capacity(const BenchSetup& setup, std::size_t streams,
                        double seconds) {
  serve::LocalRecognizer recognizer(*setup.compiled);
  serve::StreamConfig config;
  config.decode.mode = speech::DecodeMode::kNone;
  for (std::size_t s = 0; s < streams; ++s) {
    const serve::StreamHandle h = recognizer.open_stream(config);
    const std::vector<float> wave = make_waveform(seconds, 4000 + s);
    (void)recognizer.submit_audio(h, wave);
    (void)recognizer.finish_stream(h);
  }
  recognizer.drain();
  return recognizer.engine().stats().real_time_factor();
}

struct OverloadResult {
  runtime::RuntimeStats stats;
  std::size_t degraded_events = 0;
  std::size_t rejected_events = 0;
};

/// Open-loop overload run: `streams` concurrent streams, each pushing
/// 10 ms chunks at `speedup`x real time (so offered load =
/// streams * speedup in 1x-stream units) for `window_seconds` of
/// virtual time, against the virtual clock. Audio is generated chunk by
/// chunk, so the offered load — not stream buffers — is what the run
/// costs. The window is the sustained-overload epoch: it must dominate
/// the deadline budget for scheduling policy to matter.
OverloadResult run_overload(const BenchSetup& setup,
                            const PolicyScenario& scenario,
                            std::size_t streams, double speedup,
                            double window_seconds, double budget_seconds,
                            std::size_t max_batch) {
  runtime::ManualClock clock;
  runtime::EngineConfig engine_config;
  engine_config.max_batch = max_batch;
  engine_config.scheduler = scenario.scheduler;
  engine_config.overload = scenario.overload;
  engine_config.clock = &clock;
  // Bounded-memory recorders: an overload soak records one lag sample
  // per 10 ms step — the capped mode is what keeps hours-long runs flat.
  engine_config.stats_sample_cap = 8192;
  serve::LocalRecognizer recognizer(*setup.compiled, engine_config);

  serve::StreamConfig stream_config;
  stream_config.decode.mode = speech::DecodeMode::kNone;
  stream_config.deadline.budget_seconds = budget_seconds;

  constexpr std::size_t kChunkSamples = 160;  // 10 ms at 16 kHz
  const double chunk_interval_us = 10'000.0 / speedup;
  // Every stream pushes for the whole window; the per-stream audio is
  // window * speedup seconds, delivered one chunk at a time.
  const std::size_t chunks_per_stream = static_cast<std::size_t>(
      window_seconds * 1e6 / chunk_interval_us);
  struct StreamState {
    serve::StreamHandle handle;
    Rng rng{0};
    std::size_t chunks_left = 0;
    double next_arrival_us = 0.0;
  };
  std::vector<StreamState> arrivals(streams);
  for (std::size_t s = 0; s < streams; ++s) {
    arrivals[s].handle = recognizer.open_stream(stream_config);
    arrivals[s].rng = Rng(7000 + s);
    arrivals[s].chunks_left = chunks_per_stream;
    // Stagger starts across one chunk interval so arrivals interleave
    // instead of pulsing in lockstep.
    arrivals[s].next_arrival_us =
        chunk_interval_us * static_cast<double>(s) /
        static_cast<double>(streams);
  }

  OverloadResult result;
  std::vector<float> chunk(kChunkSamples);
  std::vector<serve::RecognizerEvent> events;
  const auto count_control_events = [&result, &events, &recognizer] {
    events.clear();
    recognizer.poll_events(events);
    for (const serve::RecognizerEvent& event : events) {
      if (event.event.kind == speech::StreamEventKind::kDegraded) {
        ++result.degraded_events;
      } else if (event.event.kind == speech::StreamEventKind::kRejected) {
        ++result.rejected_events;
      }
    }
  };
  std::size_t rounds = 0;
  while (true) {
    bool arrivals_left = false;
    double next_due = std::numeric_limits<double>::infinity();
    for (StreamState& st : arrivals) {
      while (st.chunks_left > 0 && st.next_arrival_us <= clock.now_us()) {
        for (float& sample : chunk) sample = 0.1F * st.rng.normal();
        (void)recognizer.submit_audio(st.handle, chunk);
        st.next_arrival_us += chunk_interval_us;
        if (--st.chunks_left == 0) {
          (void)recognizer.finish_stream(st.handle);
        }
      }
      if (st.chunks_left > 0) {
        arrivals_left = true;
        next_due = std::min(next_due, st.next_arrival_us);
      }
    }

    WallTimer step_timer;
    const std::size_t advanced = recognizer.step();
    if (advanced > 0) {
      clock.advance_us(step_timer.elapsed_us());
    } else if (arrivals_left) {
      clock.set_us(std::max(clock.now_us(), next_due));  // idle: skip ahead
    } else {
      break;  // no audio left anywhere: the workload is served
    }

    if (++rounds % 64 == 0) count_control_events();
  }
  count_control_events();
  result.stats = recognizer.engine().stats();
  return result;
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("hidden", "256", "GRU hidden size of the served model");
  cli.add_flag("threads", std::to_string(ThreadPool::default_thread_count()),
               "thread pool size");
  cli.add_flag("seconds", "2.5",
               "sustained-overload window (virtual seconds every stream "
               "keeps pushing audio)");
  cli.add_flag("budget", "0.25", "per-stream deadline budget (seconds)");
  cli.add_flag("max-streams", "96",
               "cap on concurrent streams (excess load is applied by "
               "accelerating each stream's arrival clock)");
  cli.add_flag("max-batch", "32", "engine max_batch per scheduling round");
  cli.add_flag("keep", "0.25", "BSP column keep fraction");
  cli.add_switch("quick",
                 "small model + short audio (CI smoke run; overrides "
                 "--hidden, --seconds, --budget and --max-streams)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 cli.help("bench_overload").c_str());
    return 1;
  }

  const bool quick = cli.get_switch("quick");
  const std::size_t hidden =
      quick ? 96 : static_cast<std::size_t>(cli.get_int("hidden"));
  const double window = quick ? 0.4 : cli.get_double("seconds");
  const double budget = quick ? 0.08 : cli.get_double("budget");
  const std::size_t max_streams =
      quick ? 32 : static_cast<std::size_t>(cli.get_int("max-streams"));
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads"));
  const std::size_t max_batch =
      static_cast<std::size_t>(cli.get_int("max-batch"));
  const double keep = cli.get_double("keep");

  BenchSetup setup = build_model(hidden, threads, keep);

  // Capacity: the aggregate real-time factor of a saturated closed-loop
  // run = how many 1x streams the engine can serve in real time.
  const double capacity = measure_capacity(
      setup, /*streams=*/max_batch, /*seconds=*/quick ? 0.5 : 2.0);
  std::printf(
      "Overload scheduling: hidden=%zu threads=%zu window=%.1fs "
      "budget=%.0fms capacity~%.1f streams at 1x%s\n\n",
      hidden, threads, window, budget * 1e3, capacity,
      quick ? " (quick)" : "");

  JsonReport report;
  Table table({"load", "policy", "streams", "xRT/strm", "frames", "shed",
               "rejected", "p50 lag ms", "p95 lag ms", "p99 lag ms",
               "miss %"});
  for (const double load : {1.0, 2.0, 4.0}) {
    const double offered = std::max(1.0, load * capacity);
    const std::size_t streams = std::min(
        max_streams, static_cast<std::size_t>(std::max(1.0, offered)));
    const double speedup = offered / static_cast<double>(streams);
    for (const PolicyScenario& scenario : kScenarios) {
      const OverloadResult result = run_overload(
          setup, scenario, streams, speedup, window, budget, max_batch);
      const runtime::RuntimeStats& stats = result.stats;
      table.add_row(
          {format_double(load, 0) + "x", scenario.name,
           std::to_string(streams), format_double(speedup, 2),
           std::to_string(stats.frames_processed),
           std::to_string(stats.shed_frames),
           std::to_string(stats.rejected_streams),
           format_double(stats.lag.p50_us() * 1e-3, 1),
           format_double(stats.lag.p95_us() * 1e-3, 1),
           format_double(stats.lag.p99_us() * 1e-3, 1),
           format_double(stats.miss_rate() * 100.0, 1)});

      JsonRecord record;
      record.set("section", "overload");
      record.set("load_factor", load);
      record.set("policy", scenario.name);
      record.set("scheduler", to_string(scenario.scheduler));
      record.set("overload", to_string(scenario.overload));
      record.set("streams", static_cast<std::int64_t>(streams));
      record.set("arrival_speedup", speedup);
      record.set("budget_seconds", budget);
      record.set("window_seconds", window);
      record.set("capacity_streams", capacity);
      record.set("frames",
                 static_cast<std::int64_t>(stats.frames_processed));
      record.set("shed_frames",
                 static_cast<std::int64_t>(stats.shed_frames));
      record.set("rejected_streams",
                 static_cast<std::int64_t>(stats.rejected_streams));
      record.set("degraded_events",
                 static_cast<std::int64_t>(result.degraded_events));
      record.set("p50_lag_ms", stats.lag.p50_us() * 1e-3);
      record.set("p95_lag_ms", stats.lag.p95_us() * 1e-3);
      record.set("p99_lag_ms", stats.lag.p99_us() * 1e-3);
      record.set("miss_rate", stats.miss_rate());
      record.set("mean_batch", stats.mean_batch());
      report.add(std::move(record));
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "lag = per-step worst head-frame wait behind the arrival clock; "
      "miss %% = frames served later than the %.0f ms budget. Open-loop "
      "arrivals at load x capacity (xRT/strm is each stream's arrival "
      "speedup when the stream count is capped). Round-robin lag grows "
      "with overload; edf/lag-aware + shed bound p99 lag near the "
      "budget by dropping overdue frames (kDegraded events); "
      "lag-aware + reject drops whole streams instead so survivors stay "
      "real-time.\n",
      budget * 1e3);

  report.write_file("overload.json");
  std::printf("wrote overload.json (%zu records)\n", report.size());
  return 0;
}
