// Ablation of the compiler optimizations (paper Sec. IV-B): starting from
// the ESE-style CSR strawman, adds the paper's optimizations one at a time
// on a recurrent-scale matrix and measures real kernel time on this host:
//
//   csr                 unstructured storage, one index per nonzero
//   bspc                compact block format, no reorder, no LRE
//   bspc+reorder        + matrix reorder (pattern grouping, balance)
//   bspc+lre            + redundant load elimination only
//   bspc+reorder+lre    the full RTMobile configuration
//
// Also reports the storage footprint of each format and the thread-scaling
// of the full configuration.
#include <cstdio>
#include <memory>

#include "compiler/execution_plan.hpp"
#include "hw/thread_pool.hpp"
#include "hw/timer.hpp"
#include "tensor/ops.hpp"
#include "train/projection.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

struct Variant {
  const char* label;
  SparseFormat format;
  bool reorder;
  bool lre;
};

constexpr Variant kVariants[] = {
    {"csr (ESE-style)", SparseFormat::kCsr, false, false},
    {"bspc", SparseFormat::kBspc, false, false},
    {"bspc+reorder", SparseFormat::kBspc, true, false},
    {"bspc+lre", SparseFormat::kBspc, false, true},
    {"bspc+reorder+lre", SparseFormat::kBspc, true, true},
};

}  // namespace
}  // namespace rtmobile

int main() {
  using namespace rtmobile;
  constexpr std::size_t kRows = 1024;
  constexpr std::size_t kCols = 2048;
  constexpr double kColKeep = 1.0 / 16.0;   // 16x column compression
  constexpr double kRowKeep = 0.5;          // 2x row compression

  Rng rng(31337);
  Matrix weights(kRows, kCols);
  fill_normal(weights.span(), rng, 1.0F);
  // A *skewed* BSP structure (varying per-stripe density) so reorder has
  // imbalance to fix: scale per-stripe energy before masking.
  for (std::size_t r = 0; r < kRows; ++r) {
    const float scale = 0.25F + 3.0F * static_cast<float>(r) / kRows;
    for (std::size_t c = 0; c < kCols; ++c) weights(r, c) *= scale;
  }
  BlockMask mask = block_column_mask(weights, 64, 16, kColKeep);
  apply_row_pruning(weights, kRowKeep, mask);

  Vector x(kCols);
  fill_normal(x.span(), rng, 1.0F);
  Vector y(kRows);

  const std::size_t threads = ThreadPool::default_thread_count();
  ThreadPool pool(threads);

  std::printf("== Compiler-optimization ablation ==\n");
  std::printf(
      "matrix %zux%zu, 16x column + 2x row compression (BSP structure),\n"
      "%zu threads. Times are best-of-3 means over 50 matvecs.\n\n",
      kRows, kCols, threads);

  JsonReport report;
  Table table({"configuration", "time us", "speedup vs csr",
               "storage KB (fp16)", "imbalance"});
  double csr_us = 0.0;
  for (const Variant& variant : kVariants) {
    CompilerOptions options;
    options.format = variant.format;
    options.reorder = variant.reorder;
    options.lre = variant.lre;
    options.threads = threads;
    options.value_bytes = 2;
    const LayerPlan plan = LayerPlan::compile(weights, &mask, options);
    const double time_us = time_best_of_us(
        [&] { plan.execute(x.span(), y.span(), &pool); }, 50, 3);
    if (variant.format == SparseFormat::kCsr) csr_us = time_us;
    table.add_row({variant.label, format_double(time_us, 1),
                   format_double(csr_us / time_us, 2) + "x",
                   format_double(
                       static_cast<double>(plan.memory_bytes()) / 1024.0, 1),
                   format_double(plan.imbalance(), 3)});
    JsonRecord record;
    record.set("experiment", "ablation_compiler");
    record.set("configuration", variant.label);
    record.set("time_us", time_us);
    record.set("speedup_vs_csr", csr_us / time_us);
    record.set("storage_bytes",
               static_cast<std::int64_t>(plan.memory_bytes()));
    report.add(record);
  }
  std::printf("%s\n", table.to_string().c_str());

  // ---- thread scaling of the full configuration -------------------------
  std::printf("thread scaling (bspc+reorder+lre):\n\n");
  Table scaling({"threads", "time us", "scaling"});
  double single_us = 0.0;
  for (const std::size_t t : {1U, 2U, 4U, 8U}) {
    if (t > threads) break;
    CompilerOptions options;
    options.format = SparseFormat::kBspc;
    options.reorder = true;
    options.lre = true;
    options.threads = t;
    const LayerPlan plan = LayerPlan::compile(weights, &mask, options);
    std::unique_ptr<ThreadPool> local_pool;
    if (t > 1) local_pool = std::make_unique<ThreadPool>(t);
    const double time_us = time_best_of_us(
        [&] { plan.execute(x.span(), y.span(), local_pool.get()); }, 50, 3);
    if (t == 1) single_us = time_us;
    scaling.add_row({std::to_string(t), format_double(time_us, 1),
                     format_double(single_us / time_us, 2) + "x"});
    JsonRecord record;
    record.set("experiment", "ablation_threads");
    record.set("threads", static_cast<std::int64_t>(t));
    record.set("time_us", time_us);
    report.add(record);
  }
  std::printf("%s\n", scaling.to_string().c_str());
  report.write_file("ablation_compiler.json");
  return 0;
}
